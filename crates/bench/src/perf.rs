//! `BENCH_*.json` perf-trajectory export.
//!
//! The bench binaries (`repro`, `detection`, `ablations`) accept
//! `--bench-json <path>` and write a machine-readable perf summary:
//! wall-clock totals per experiment, the per-phase breakdown (local
//! training / filter / aggregation span histograms) pulled from the
//! telemetry [`MetricsRegistry`], and — for `repro` — a threads-scaling
//! probe that measures the deterministic engine at `threads = 1` vs
//! `threads = N` on the same seed and records the speedup. Future PRs
//! diff these files to keep the perf trajectory honest.
//!
//! The JSON is hand-rolled: the workspace is intentionally
//! zero-dependency, so there is no serde to lean on. Only the small,
//! flat schema below is ever emitted.

use asyncfl_attacks::AttackKind;
use asyncfl_core::aggregation::MeanAggregator;
use asyncfl_core::update::{ClientUpdate, PassthroughFilter};
use asyncfl_core::AsyncFilter;
use asyncfl_data::DatasetProfile;
use asyncfl_ml::train::{build_model, build_optimizer, LocalTrainer};
use asyncfl_rng::rngs::StdRng;
use asyncfl_rng::{SeedableRng, StandardSample};
use asyncfl_sim::config::SimConfig;
use asyncfl_sim::runner::{build_attack, Simulation};
use asyncfl_sim::schedule::{EventKey, SchedulerKind};
use asyncfl_sim::server::BufferedServer;
use asyncfl_telemetry::metrics::MetricsRegistry;
use asyncfl_telemetry::{Event, MemorySink, SharedSink, Sink, Stopwatch};
use asyncfl_tensor::Vector;
use std::sync::Arc;

/// One span's latency + allocation summary (latency in nanoseconds,
/// allocation in bytes; both bucketed — see
/// [`asyncfl_telemetry::metrics::Log2Histogram`]).
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Span name (`local_training`, `filter`, `aggregate`, `kmeans_1d`).
    pub span: String,
    /// Closed-span count.
    pub count: u64,
    /// Total time inside the span, seconds.
    pub total_secs: f64,
    /// Mean duration, nanoseconds.
    pub mean_ns: f64,
    /// 50th / 95th / 99th percentile durations, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Total bytes allocated across all closes of this span (0 when no
    /// counting allocator was installed — "not measured").
    pub alloc_bytes_total: u64,
    /// Mean bytes allocated per span close.
    pub alloc_bytes_mean: f64,
    /// 99th percentile of per-close allocated bytes.
    pub alloc_bytes_p99: u64,
    /// Largest allocator live-byte high-water mark seen at any close.
    pub peak_live_bytes: u64,
}

/// Extracts the per-phase breakdown from a registry's span histograms.
pub fn phase_rows(registry: &MetricsRegistry) -> Vec<PhaseRow> {
    let allocs = registry.span_allocs();
    registry
        .spans()
        .into_iter()
        .map(|(name, hist)| {
            let alloc = allocs.get(name);
            PhaseRow {
                span: name.to_string(),
                count: hist.count(),
                total_secs: hist.sum() as f64 / 1e9,
                mean_ns: hist.mean().unwrap_or(0.0),
                p50_ns: hist.percentile(50.0).unwrap_or(0),
                p95_ns: hist.percentile(95.0).unwrap_or(0),
                p99_ns: hist.percentile(99.0).unwrap_or(0),
                alloc_bytes_total: alloc.map_or(0, |h| h.sum()),
                alloc_bytes_mean: alloc.and_then(|h| h.mean()).unwrap_or(0.0),
                alloc_bytes_p99: alloc.and_then(|h| h.percentile(99.0)).unwrap_or(0),
                peak_live_bytes: registry.span_peak_live(name),
            }
        })
        .collect()
}

/// One gauge's sample summary pulled from the registry.
#[derive(Debug, Clone)]
pub struct GaugeRow {
    /// Gauge name (`buffer_occupancy`, `deferred_queue_depth`, …).
    pub name: String,
    /// Samples taken.
    pub count: u64,
    /// Most recent sample.
    pub last: u64,
    /// Mean of all samples.
    pub mean: f64,
    /// Largest sample.
    pub max: u64,
}

/// Extracts the gauge summaries from a registry.
pub fn gauge_rows(registry: &MetricsRegistry) -> Vec<GaugeRow> {
    registry
        .gauges()
        .into_iter()
        .map(|(name, hist)| GaugeRow {
            name: name.to_string(),
            count: hist.count(),
            last: registry.gauge_last(name).unwrap_or(0),
            mean: hist.mean().unwrap_or(0.0),
            max: hist.max().unwrap_or(0),
        })
        .collect()
}

/// Extracts the named monotonic counters from a registry.
pub fn counter_rows(registry: &MetricsRegistry) -> Vec<(String, u64)> {
    registry
        .counters()
        .into_iter()
        .map(|(name, n)| (name.to_string(), n))
        .collect()
}

/// Peak-memory estimate for the whole bench process: the counting
/// allocator's view plus, on Linux, the kernel's `VmHWM` (peak resident
/// set) from `/proc/self/status`. The two bracket the truth — the
/// allocator undercounts (allocator metadata, stacks, code) and `VmHWM`
/// overcounts relative to heap (it includes everything resident).
#[derive(Debug, Clone, Default)]
pub struct RssProbe {
    /// Allocator live-byte high-water mark (0 when not installed).
    pub alloc_peak_live_bytes: u64,
    /// Cumulative bytes allocated over the process lifetime.
    pub alloc_total_bytes: u64,
    /// Cumulative allocation calls.
    pub alloc_count: u64,
    /// Kernel peak resident set size in bytes, when readable.
    pub vm_hwm_bytes: Option<u64>,
}

/// Parses the `VmHWM:` line out of `/proc/self/status` contents.
/// Exposed for tests; returns bytes (the kernel reports kB).
pub fn parse_vm_hwm(status: &str) -> Option<u64> {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Samples the peak-RSS estimate for this process.
pub fn run_rss_probe() -> RssProbe {
    let snap = asyncfl_telemetry::alloc::snapshot();
    RssProbe {
        alloc_peak_live_bytes: snap.peak_live_bytes,
        alloc_total_bytes: snap.allocated_bytes,
        alloc_count: snap.alloc_count,
        vm_hwm_bytes: std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| parse_vm_hwm(&s)),
    }
}

/// One timed point of the threads-scaling curve.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker threads for this leg.
    pub threads: usize,
    /// Wall clock, seconds.
    pub secs: f64,
    /// `baseline_secs / secs`.
    pub speedup: f64,
    /// Whether this leg reproduced the sequential `RunResult` exactly.
    pub identical: bool,
}

/// Result of the threads-scaling probe: the same seeded AsyncFilter-vs-GD
/// run timed at `threads = 1` and at each point of a doubling thread
/// ladder up to `threads = N`.
///
/// `host_cpus` keeps the speedup interpretable when artifacts from
/// different machines are diffed: on a single-core host the parallel leg
/// can only measure the pool's overhead (speedup < 1 is expected there),
/// so timing is skipped — but the byte-identical re-check still runs on
/// every host (on a smaller workload, since it measures determinism, not
/// throughput).
#[derive(Debug, Clone)]
pub struct ScalingProbe {
    /// Worker threads used for the widest parallel leg.
    pub threads: usize,
    /// CPUs available to this process when the probe ran (see
    /// [`detect_host_cpus`]).
    pub host_cpus: usize,
    /// Probe size (clients / rounds), for context in the artifact.
    pub clients: usize,
    /// Aggregation rounds simulated.
    pub rounds: u64,
    /// Wall clock of the sequential leg, seconds.
    pub baseline_secs: f64,
    /// Wall clock of the widest parallel leg, seconds.
    pub parallel_secs: f64,
    /// `baseline_secs / parallel_secs`.
    pub speedup: f64,
    /// Whether every parallel leg produced a `RunResult` structurally
    /// identical to the sequential one (the determinism guarantee,
    /// re-checked in the artifact itself — on all hosts, skipped or not).
    pub identical: bool,
    /// Speedup curve over the thread ladder (empty when timing was
    /// skipped).
    pub curve: Vec<ScalingPoint>,
    /// Why timing was skipped, if it was. On a single-CPU host the
    /// parallel leg can only measure pool overhead, so a "speedup" number
    /// would read as a regression while measuring nothing — the probe
    /// records the skip reason instead and only reports the byte-identity
    /// verdict.
    pub skipped: Option<&'static str>,
}

/// Parses the kernel's cpu-list format (`"0-3,5,7-8"`, as found in
/// `/sys/devices/system/cpu/online`) into a CPU count.
pub fn parse_cpu_list(list: &str) -> Option<usize> {
    let mut count = 0usize;
    for part in list.trim().split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = part.split_once('-') {
            let lo: usize = lo.trim().parse().ok()?;
            let hi: usize = hi.trim().parse().ok()?;
            if hi < lo {
                return None;
            }
            count += hi - lo + 1;
        } else {
            let _: usize = part.parse().ok()?;
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(count)
    }
}

/// Pure core of [`detect_host_cpus`], split out so the fallback ladder is
/// unit-testable without touching process-global state.
fn resolve_host_cpus(
    env_override: Option<&str>,
    available: usize,
    online_list: Option<&str>,
) -> usize {
    if let Some(v) = env_override {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    if available > 1 {
        return available;
    }
    // `available_parallelism` reports 1 under affinity masks and some
    // cgroup configurations even on multi-core hardware — the earlier
    // probe trusted it blindly and never timed anything. Fall back to the
    // kernel's online-CPU list before concluding the host is single-core.
    online_list
        .and_then(parse_cpu_list)
        .map_or(available.max(1), |n| n.max(available))
}

/// How many CPUs this process can actually use: the `ASYNCFL_HOST_CPUS`
/// override if set (escape hatch for machines where both probes lie),
/// else `available_parallelism`, else the kernel's online-CPU list.
pub fn detect_host_cpus() -> usize {
    resolve_host_cpus(
        std::env::var("ASYNCFL_HOST_CPUS").ok().as_deref(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        std::fs::read_to_string("/sys/devices/system/cpu/online")
            .ok()
            .as_deref(),
    )
}

fn probe_config(quick: bool, threads: usize) -> SimConfig {
    let mut cfg = SimConfig::smoke_test();
    cfg.num_clients = 32;
    cfg.num_malicious = 6;
    cfg.aggregation_bound = 16;
    cfg.rounds = if quick { 10 } else { 30 };
    // Training-heavy on purpose: the probe measures the worker pool, so
    // per-client local training (the parallel part) must dominate the
    // serial filter/aggregate/eval work or Amdahl hides the speedup.
    cfg.partition_size = Some(2_048);
    cfg.test_samples = 200;
    cfg.eval_every = cfg.rounds;
    cfg.threads = threads;
    cfg
}

fn probe_run(cfg: SimConfig) -> (f64, asyncfl_sim::metrics::RunResult) {
    let mut sim = Simulation::new(cfg.clone());
    let attack = build_attack(AttackKind::Gd, cfg.num_clients, cfg.num_malicious);
    let started = Stopwatch::start();
    let result = sim.run_with(
        Box::new(AsyncFilter::default()),
        attack,
        Box::new(MeanAggregator::new()),
    );
    (started.elapsed_secs(), result)
}

/// Shrunk config for the byte-identity re-check on hosts where timing is
/// skipped: determinism does not need the training-heavy workload the
/// timed legs use, so the check stays cheap even on one core.
fn identity_config(quick: bool, threads: usize) -> SimConfig {
    let mut cfg = probe_config(quick, threads);
    cfg.num_clients = 16;
    cfg.num_malicious = 3;
    cfg.aggregation_bound = 8;
    cfg.rounds = if quick { 4 } else { 8 };
    cfg.partition_size = Some(128);
    cfg.test_samples = 50;
    cfg.eval_every = cfg.rounds;
    cfg
}

/// Times the deterministic engine at `threads = 1` and at each point of a
/// doubling ladder up to `threads`, on the same seed, and verifies every
/// parallel leg matches the sequential result. On a single-CPU host the
/// timing legs are skipped (see [`ScalingProbe::skipped`]) but the
/// byte-identity re-check still runs, on a smaller workload.
pub fn run_scaling_probe(threads: usize, quick: bool) -> ScalingProbe {
    let threads = threads.max(2);
    let host_cpus = detect_host_cpus();
    if host_cpus == 1 {
        let (_, sequential) = probe_run(identity_config(quick, 1));
        let (_, parallel) = probe_run(identity_config(quick, threads));
        let cfg = identity_config(quick, 1);
        return ScalingProbe {
            threads,
            host_cpus,
            clients: cfg.num_clients,
            rounds: cfg.rounds,
            baseline_secs: 0.0,
            parallel_secs: 0.0,
            speedup: 0.0,
            identical: sequential == parallel,
            curve: Vec::new(),
            skipped: Some("single-cpu host"),
        };
    }
    let cfg = probe_config(quick, 1);
    let (baseline_secs, baseline) = probe_run(probe_config(quick, 1));
    // Doubling ladder 2, 4, 8, … capped at the requested width, which is
    // always the final point (so `speedup` keeps its old meaning).
    let mut ladder: Vec<usize> = Vec::new();
    let mut t = 2;
    while t < threads {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(threads);
    let mut curve = Vec::with_capacity(ladder.len());
    for t in ladder {
        let (secs, result) = probe_run(probe_config(quick, t));
        curve.push(ScalingPoint {
            threads: t,
            secs,
            speedup: if secs > 0.0 {
                baseline_secs / secs
            } else {
                0.0
            },
            identical: result == baseline,
        });
    }
    let (parallel_secs, speedup) = curve.last().map_or((0.0, 0.0), |p| (p.secs, p.speedup));
    ScalingProbe {
        threads,
        host_cpus,
        clients: cfg.num_clients,
        rounds: cfg.rounds,
        baseline_secs,
        parallel_secs,
        speedup,
        identical: curve.iter().all(|p| p.identical),
        curve,
        skipped: None,
    }
}

/// Result of the local-training throughput probe (see
/// [`run_training_probe`]): one seeded [`LocalTrainer`] run on an
/// MNIST-profile client shard, timed single-threaded so the number
/// isolates the batched-kernel hot path from pool scheduling.
#[derive(Debug, Clone)]
pub struct TrainingProbe {
    /// Dataset profile the probe trains on.
    pub profile: &'static str,
    /// Samples in the probe shard.
    pub dataset_size: usize,
    /// Local epochs per timed `train` call.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Optimizer steps taken during the timed run.
    pub steps: usize,
    /// Training samples consumed (`epochs * dataset_size`).
    pub samples: usize,
    /// Wall clock of the timed run, seconds.
    pub wall_secs: f64,
    /// Throughput: `samples / wall_secs`.
    pub samples_per_sec: f64,
    /// Mean wall clock per optimizer step, nanoseconds.
    pub step_mean_ns: f64,
}

/// Times a single-threaded [`LocalTrainer`] run on the MNIST profile and
/// reports throughput. One untimed warm-up call pages in buffers and
/// lets allocator state settle; the second call is what's measured.
pub fn run_training_probe(quick: bool) -> TrainingProbe {
    let mut rng = StdRng::seed_from_u64(0x7121);
    let profile = DatasetProfile::Mnist;
    let task = profile.build_task(&mut rng);
    let dataset_size = if quick { 1_024 } else { 4_096 };
    let data = task.test_dataset(dataset_size, &mut rng);
    let trainer = LocalTrainer::from_profile(&profile);
    let mut model = build_model(&profile, &task, &mut rng);
    let mut optimizer = build_optimizer(&profile, model.num_params());
    trainer.train(model.as_mut(), &data, optimizer.as_mut(), &mut rng);
    let started = Stopwatch::start();
    let stats = trainer.train(model.as_mut(), &data, optimizer.as_mut(), &mut rng);
    let wall_secs = started.elapsed_secs();
    let samples = trainer.epochs() * data.len();
    TrainingProbe {
        profile: "mnist",
        dataset_size,
        epochs: trainer.epochs(),
        batch_size: trainer.batch_size(),
        steps: stats.steps,
        samples,
        wall_secs,
        samples_per_sec: if wall_secs > 0.0 {
            samples as f64 / wall_secs
        } else {
            0.0
        },
        step_mean_ns: if stats.steps > 0 {
            wall_secs * 1e9 / stats.steps as f64
        } else {
            0.0
        },
    }
}

/// One filter pass of the wide-model probe, as observed through the
/// telemetry `filter` span.
#[derive(Debug, Clone)]
pub struct FilterPassStat {
    /// Pass index (0-based, in aggregation order).
    pub pass: usize,
    /// Wall-clock nanoseconds inside the span.
    pub nanos: u64,
    /// Bytes allocated while the span was open.
    pub alloc_bytes: u64,
}

/// Result of the wide-model filter probe (see [`run_filter_wide_probe`]):
/// a buffered server driven with ≥10⁵-dimensional synthetic updates so the
/// filter's distance kernels — not the tiny repro models — dominate, with
/// per-pass span stats pulled from a dedicated memory sink.
#[derive(Debug, Clone)]
pub struct FilterWideProbe {
    /// Model dimensionality of the synthetic updates.
    pub dim: usize,
    /// Aggregation bound Ω (buffer size per pass).
    pub bound: usize,
    /// Filter passes executed.
    pub passes: usize,
    /// Updates fed to the server (at most `passes * bound`; deferred
    /// re-buffers fill part of the next pass's buffer, so fewer fresh
    /// arrivals are needed to trigger it).
    pub updates_fed: usize,
    /// Total eq. 6 distance computations, from the
    /// `filter_distances_computed` counter.
    pub distances_computed: u64,
    /// The `filter` span summary, renamed `filter_wide` so it lands in
    /// the artifact's `phases` table (and under the bench-diff gate)
    /// without colliding with the repro experiments' own `filter` row.
    pub phase: Option<PhaseRow>,
    /// Per-pass latency/allocation, in aggregation order.
    pub per_pass: Vec<FilterPassStat>,
}

/// Drives a [`BufferedServer`] + [`AsyncFilter`] with wide synthetic
/// updates (131 072 parameters) across staleness lags {0, 1, 2} and
/// reports per-pass filter cost plus the distance-computation total.
/// Deterministic: the fill comes from a fixed-seed [`StdRng`].
pub fn run_filter_wide_probe(quick: bool) -> FilterWideProbe {
    let dim = 131_072;
    let bound = 32;
    let passes = if quick { 6 } else { 24 };
    let mem = Arc::new(MemorySink::new(1 << 16));
    let mut server = BufferedServer::new(
        Vector::zeros(dim),
        bound,
        64,
        Box::new(AsyncFilter::default()),
        Box::new(MeanAggregator::new()),
    )
    .with_sink(SharedSink::from_arc(mem.clone()));
    let mut rng = StdRng::seed_from_u64(0xA5F1);
    let base = Vector::zeros(dim);
    let mut delta = vec![0.0f64; dim];
    let mut updates_fed = 0usize;
    let mut completed = 0usize;
    while completed < passes {
        // Three staleness lags keep several eq. 4 groups live, so the
        // probe exercises the grouped (not single-group) scoring path.
        let lag = (updates_fed % 3) as u64;
        let base_round = server.round().saturating_sub(lag);
        for v in &mut delta {
            *v = f64::sample(&mut rng) - 0.5;
        }
        let update = ClientUpdate::from_delta(
            updates_fed % 64,
            base_round,
            server.round().saturating_sub(base_round),
            &base,
            Vector::from(delta.clone()),
            10,
        );
        updates_fed += 1;
        if server.receive(update).is_some() {
            completed += 1;
        }
    }
    let events = mem.events();
    let registry = MetricsRegistry::new();
    for event in &events {
        registry.emit(event);
    }
    let phase = phase_rows(&registry)
        .into_iter()
        .find(|row| row.span == "filter")
        .map(|mut row| {
            row.span = "filter_wide".to_string();
            row
        });
    let per_pass: Vec<FilterPassStat> = events
        .iter()
        .filter_map(|event| match event {
            Event::SpanClosed {
                name: "filter",
                nanos,
                alloc_bytes,
                ..
            } => Some((*nanos, *alloc_bytes)),
            _ => None,
        })
        .enumerate()
        .map(|(pass, (nanos, alloc_bytes))| FilterPassStat {
            pass,
            nanos,
            alloc_bytes,
        })
        .collect();
    FilterWideProbe {
        dim,
        bound,
        passes,
        updates_fed,
        distances_computed: registry.counter("filter_distances_computed"),
        phase,
        per_pass,
    }
}

/// Result of the million-client scale probe (see [`run_scale_probe`]):
/// one deterministic multi-round run at `num_clients = 1_000_000`
/// exercising lazy client materialization (DESIGN.md §11). The memory
/// fields are the scale contract: resident client state must track the
/// shard cache and the in-flight set, not the population — a regression
/// back to eager per-client arrays adds ~1 KB × 10⁶ clients and blows
/// straight past the bench-diff allocation gate.
#[derive(Debug, Clone)]
pub struct ScaleProbe {
    /// Client population (1 000 000 in the shipped artifact).
    pub clients: usize,
    /// Aggregation rounds requested (trimmed in `--quick` mode).
    pub rounds: u64,
    /// Aggregation bound Ω.
    pub aggregation_bound: usize,
    /// Per-cycle participation probability (< 1 so the probe exercises
    /// the idle/reschedule path at scale, not just training).
    pub participation: f64,
    /// Spawner shard-cache capacity in effect for the run.
    pub shard_cache_capacity: usize,
    /// Rounds actually completed (must equal `rounds`; fewer means the
    /// event budget tripped).
    pub rounds_completed: u64,
    /// Client reports received across the run.
    pub updates_received: u64,
    /// Discrete events the engine's loop consumed (deterministic per
    /// seed).
    pub loop_events: u64,
    /// Wall clock, seconds.
    pub wall_secs: f64,
    /// Event throughput: `loop_events / wall_secs`.
    pub events_per_sec: f64,
    /// Final global-model test accuracy.
    pub final_accuracy: f64,
    /// Largest `resident_client_states` gauge sample observed — the
    /// spawner's shard-cache occupancy, bounded by
    /// `shard_cache_capacity` however many clients exist.
    pub resident_client_states_max: u64,
    /// Allocator live-byte high-water mark at probe end. Process-global
    /// and monotonic, so an upper bound for the probe itself; 0 when no
    /// counting allocator is installed (plain test binaries).
    pub alloc_peak_live_bytes: u64,
    /// Kernel peak resident set size in bytes, when readable.
    pub vm_hwm_bytes: Option<u64>,
}

/// The scale probe's configuration: a million tiny-shard clients, no
/// attackers (the probe measures the engine, not the filter), threads = 1
/// (the inline path is the documented scale path), and the auto-sized
/// shard cache. The allocator peak this produces is dominated by the
/// Ω-sized aggregation buffer (each buffered update carries a full model
/// delta) — legitimate server state that scales with Ω, not with the
/// population — so Ω is kept moderate to keep the probe's wall clock and
/// footprint CI-friendly.
fn scale_probe_config(quick: bool) -> SimConfig {
    let mut cfg = SimConfig::paper_default(DatasetProfile::Mnist);
    cfg.num_clients = 1_000_000;
    cfg.num_malicious = 0;
    cfg.aggregation_bound = if quick { 4_096 } else { 8_192 };
    cfg.rounds = if quick { 4 } else { 12 };
    // Tiny shards: per-client data volume is not what this probe measures,
    // and small shards keep the million-client kickoff derivation cheap.
    cfg.partition_size = Some(4);
    cfg.test_samples = 200;
    cfg.eval_every = cfg.rounds;
    cfg.participation = 0.5;
    cfg.threads = 1;
    cfg
}

/// Pure core of [`run_scale_probe`], parameterized on the population so
/// the unit test can exercise the exact probe path at a debug-build
/// friendly size.
fn run_scale_probe_sized(clients: usize, quick: bool) -> ScaleProbe {
    let mut cfg = scale_probe_config(quick);
    cfg.num_clients = clients;
    cfg.aggregation_bound = cfg.aggregation_bound.min(clients);
    let registry = Arc::new(MetricsRegistry::new());
    let sink = SharedSink::from_arc(Arc::clone(&registry) as Arc<dyn Sink>);
    let mut sim = Simulation::new(cfg.clone());
    let attack = build_attack(AttackKind::None, cfg.num_clients, cfg.num_malicious);
    let started = Stopwatch::start();
    let result = sim.run_with_sink(
        Box::new(PassthroughFilter),
        attack,
        Box::new(MeanAggregator::new()),
        Some(sink),
    );
    let wall_secs = started.elapsed_secs();
    let snap = asyncfl_telemetry::alloc::snapshot();
    ScaleProbe {
        clients: cfg.num_clients,
        rounds: cfg.rounds,
        aggregation_bound: cfg.aggregation_bound,
        participation: cfg.participation,
        shard_cache_capacity: cfg.effective_shard_cache_capacity(),
        rounds_completed: result.rounds_completed,
        updates_received: result.updates_received,
        loop_events: result.loop_events,
        wall_secs,
        events_per_sec: if wall_secs > 0.0 {
            result.loop_events as f64 / wall_secs
        } else {
            0.0
        },
        final_accuracy: result.final_accuracy,
        resident_client_states_max: registry
            .gauge("resident_client_states")
            .and_then(|h| h.max())
            .unwrap_or(0),
        alloc_peak_live_bytes: snap.peak_live_bytes,
        vm_hwm_bytes: std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| parse_vm_hwm(&s)),
    }
}

/// Runs the deterministic engine at `--clients 1_000_000` for a
/// multi-round horizon and reports throughput plus the peak-memory
/// contract (allocator high-water mark + kernel `VmHWM`). Before lazy
/// materialization this configuration exhausted memory building the
/// per-client `Vec`s; now it completes with resident client state bounded
/// by the shard cache, and the artifact records the proof.
pub fn run_scale_probe(quick: bool) -> ScaleProbe {
    run_scale_probe_sized(1_000_000, quick)
}

/// One depth point of the event-scheduling probe: steady-state cost per
/// pop+reschedule pair with `entries` resident events, for both queue
/// implementations.
#[derive(Debug, Clone)]
pub struct EventSchedulePoint {
    /// Resident events held in the queue during the timed loop.
    pub entries: usize,
    /// Mean nanoseconds per pop+push pair, binary-heap twin.
    pub heap_ns_per_event: f64,
    /// Mean nanoseconds per pop+push pair, calendar-queue wheel.
    pub wheel_ns_per_event: f64,
}

/// Result of the event-scheduling probe (see [`run_event_schedule_probe`]):
/// the engines' pop-one/reschedule hold pattern timed at several resident
/// depths for the wheel and its heap twin, plus a differential replay
/// verifying the two pop byte-identically. The flatness ratio is the
/// scheduler contract (DESIGN.md §12) in one number: a wheel whose
/// per-event cost grows with depth has regressed to heap behavior.
#[derive(Debug, Clone)]
pub struct EventScheduleProbe {
    /// Timed pop+push pairs per (kind, depth) leg.
    pub hold_ops: usize,
    /// Per-depth timings, depths ascending.
    pub points: Vec<EventSchedulePoint>,
    /// Deepest wheel ns/event divided by shallowest — near 1.0 for a
    /// healthy wheel, unbounded for a structure whose pop cost scales
    /// with occupancy.
    pub wheel_flat_ratio: f64,
    /// Whether a seeded replay popped byte-identically from both queues
    /// (times compared by bit pattern, then sequence numbers).
    pub pop_order_identical: bool,
}

/// Synthetic event for the scheduling probe — the same `(time, seq)` key
/// shape the engines schedule with.
#[derive(Debug, Clone, Copy)]
struct ProbeEvent {
    at: f64,
    seq: u64,
}

impl EventKey for ProbeEvent {
    fn time(&self) -> f64 {
        self.at
    }

    fn seq(&self) -> u64 {
        self.seq
    }
}

/// Fills a queue of `kind` with `entries` seeded events spread over a
/// 100-second horizon, then times `ops` steady-state pop+reschedule pairs
/// (each pop is pushed back at `popped + dur`, the engines' exact hold
/// pattern). Returns mean nanoseconds per pair.
fn time_queue_hold(kind: SchedulerKind, entries: usize, ops: usize, seed: u64) -> f64 {
    let mut queue = kind.build::<ProbeEvent>();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq = 0u64;
    for _ in 0..entries {
        queue.push(ProbeEvent {
            at: f64::sample(&mut rng) * 100.0,
            seq,
        });
        seq += 1;
    }
    let started = Stopwatch::start();
    for _ in 0..ops {
        if let Some(ev) = queue.pop() {
            queue.push(ProbeEvent {
                at: ev.at + 0.5 + f64::sample(&mut rng),
                seq,
            });
            seq += 1;
        }
    }
    let secs = started.elapsed_secs();
    if ops > 0 {
        secs * 1e9 / ops as f64
    } else {
        0.0
    }
}

/// Replays one seeded fill + hold + drain schedule through both queue
/// kinds and reports whether every pop matched byte-for-byte.
fn replay_pop_order(entries: usize, ops: usize, seed: u64) -> bool {
    let run = |kind: SchedulerKind| -> Vec<(u64, u64)> {
        let mut queue = kind.build::<ProbeEvent>();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seq = 0u64;
        let mut popped = Vec::with_capacity(entries + ops);
        for _ in 0..entries {
            queue.push(ProbeEvent {
                at: f64::sample(&mut rng) * 100.0,
                seq,
            });
            seq += 1;
        }
        for _ in 0..ops {
            if let Some(ev) = queue.pop() {
                popped.push((ev.at.to_bits(), ev.seq));
                queue.push(ProbeEvent {
                    at: ev.at + 0.5 + f64::sample(&mut rng),
                    seq,
                });
                seq += 1;
            }
        }
        while let Some(ev) = queue.pop() {
            popped.push((ev.at.to_bits(), ev.seq));
        }
        popped
    };
    run(SchedulerKind::Wheel) == run(SchedulerKind::Heap)
}

/// Pure core of [`run_event_schedule_probe`], parameterized on depths and
/// op count so the unit test can exercise the exact probe path cheaply.
fn run_event_schedule_probe_sized(depths: &[usize], hold_ops: usize) -> EventScheduleProbe {
    let mut points = Vec::with_capacity(depths.len());
    for &entries in depths {
        points.push(EventSchedulePoint {
            entries,
            heap_ns_per_event: time_queue_hold(SchedulerKind::Heap, entries, hold_ops, 0xE5E7),
            wheel_ns_per_event: time_queue_hold(SchedulerKind::Wheel, entries, hold_ops, 0xE5E7),
        });
    }
    let slowest = points
        .iter()
        .map(|p| p.wheel_ns_per_event)
        .fold(0.0f64, f64::max);
    let fastest = points
        .iter()
        .map(|p| p.wheel_ns_per_event)
        .fold(f64::INFINITY, f64::min);
    EventScheduleProbe {
        hold_ops,
        points,
        wheel_flat_ratio: if fastest > 0.0 && fastest.is_finite() {
            slowest / fastest
        } else {
            0.0
        },
        pop_order_identical: replay_pop_order(
            10_000.min(depths.last().copied().unwrap_or(0)),
            hold_ops.min(20_000),
            0x0D3,
        ),
    }
}

/// Times the indexed event scheduler against its binary-heap twin at
/// 10⁴ / 10⁵ / 10⁶ resident entries (10³–10⁵ in `--quick` mode) using the
/// engines' steady-state pop-one/reschedule pattern, and differentially
/// replays one schedule through both to re-verify byte-identical pop
/// order. The wheel's per-event cost must stay flat as depth grows — that
/// flatness (and the heap columns for contrast) is what the artifact pins.
pub fn run_event_schedule_probe(quick: bool) -> EventScheduleProbe {
    if quick {
        run_event_schedule_probe_sized(&[1_000, 10_000, 100_000], 20_000)
    } else {
        run_event_schedule_probe_sized(&[10_000, 100_000, 1_000_000], 100_000)
    }
}

/// The full artifact a bench binary writes for `--bench-json`.
#[derive(Debug, Clone, Default)]
pub struct BenchJson {
    /// Which binary produced the file.
    pub binary: &'static str,
    /// Whether `--quick` mode was active.
    pub quick: bool,
    /// Worker threads the run was configured with.
    pub threads: usize,
    /// `(experiment name, wall-clock seconds)` per executed target.
    pub experiments: Vec<(String, f64)>,
    /// Total wall clock across all targets, seconds.
    pub total_secs: f64,
    /// Per-phase span breakdown from the telemetry registry.
    pub phases: Vec<PhaseRow>,
    /// Named monotonic counters from the registry.
    pub counters: Vec<(String, u64)>,
    /// Gauge sample summaries from the registry.
    pub gauges: Vec<GaugeRow>,
    /// Threads-scaling probe (repro only).
    pub scaling: Option<ScalingProbe>,
    /// Local-training throughput probe (repro only).
    pub training: Option<TrainingProbe>,
    /// Wide-model filter probe (repro only).
    pub filter_wide: Option<FilterWideProbe>,
    /// Event-scheduling probe (repro only).
    pub event_schedule: Option<EventScheduleProbe>,
    /// Million-client scale probe (repro only).
    pub scale_1m: Option<ScaleProbe>,
    /// Process peak-memory estimate, sampled at the end of the run.
    pub rss: Option<RssProbe>,
}

/// Formats an `f64` as a JSON number (finite values only; anything else
/// degrades to `0` rather than emitting invalid JSON).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_string()
    }
}

/// Escapes a string for a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl BenchJson {
    /// Renders the artifact as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"asyncfl-bench-v2\",\n");
        s.push_str(&format!("  \"binary\": \"{}\",\n", escape(self.binary)));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"total_secs\": {},\n", num(self.total_secs)));
        s.push_str("  \"experiments\": [\n");
        for (i, (name, secs)) in self.experiments.iter().enumerate() {
            let comma = if i + 1 < self.experiments.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_clock_secs\": {}}}{comma}\n",
                escape(name),
                num(*secs)
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            let comma = if i + 1 < self.phases.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"span\": \"{}\", \"count\": {}, \"total_secs\": {}, \
                 \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
                 \"alloc_bytes_total\": {}, \"alloc_bytes_mean\": {}, \
                 \"alloc_bytes_p99\": {}, \"peak_live_bytes\": {}}}{comma}\n",
                escape(&p.span),
                p.count,
                num(p.total_secs),
                num(p.mean_ns),
                p.p50_ns,
                p.p95_ns,
                p.p99_ns,
                p.alloc_bytes_total,
                num(p.alloc_bytes_mean),
                p.alloc_bytes_p99,
                p.peak_live_bytes
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"counters\": [\n");
        for (i, (name, n)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {n}}}{comma}\n",
                escape(name)
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"gauges\": [\n");
        for (i, g) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"last\": {}, \
                 \"mean\": {}, \"max\": {}}}{comma}\n",
                escape(&g.name),
                g.count,
                g.last,
                num(g.mean),
                g.max
            ));
        }
        s.push_str("  ],\n");
        match &self.rss {
            None => s.push_str("  \"peak_rss_estimate\": null,\n"),
            Some(r) => {
                s.push_str("  \"peak_rss_estimate\": {\n");
                s.push_str(&format!(
                    "    \"alloc_peak_live_bytes\": {},\n",
                    r.alloc_peak_live_bytes
                ));
                s.push_str(&format!(
                    "    \"alloc_total_bytes\": {},\n",
                    r.alloc_total_bytes
                ));
                s.push_str(&format!("    \"alloc_count\": {},\n", r.alloc_count));
                match r.vm_hwm_bytes {
                    None => s.push_str("    \"vm_hwm_bytes\": null\n"),
                    Some(b) => s.push_str(&format!("    \"vm_hwm_bytes\": {b}\n")),
                }
                s.push_str("  },\n");
            }
        }
        match &self.scale_1m {
            None => s.push_str("  \"scale_1m\": null,\n"),
            Some(p) => {
                s.push_str("  \"scale_1m\": {\n");
                s.push_str(&format!("    \"clients\": {},\n", p.clients));
                s.push_str(&format!("    \"rounds\": {},\n", p.rounds));
                s.push_str(&format!(
                    "    \"aggregation_bound\": {},\n",
                    p.aggregation_bound
                ));
                s.push_str(&format!(
                    "    \"participation\": {},\n",
                    num(p.participation)
                ));
                s.push_str(&format!(
                    "    \"shard_cache_capacity\": {},\n",
                    p.shard_cache_capacity
                ));
                s.push_str(&format!(
                    "    \"rounds_completed\": {},\n",
                    p.rounds_completed
                ));
                s.push_str(&format!(
                    "    \"updates_received\": {},\n",
                    p.updates_received
                ));
                s.push_str(&format!("    \"loop_events\": {},\n", p.loop_events));
                s.push_str(&format!("    \"wall_secs\": {},\n", num(p.wall_secs)));
                s.push_str(&format!(
                    "    \"events_per_sec\": {},\n",
                    num(p.events_per_sec)
                ));
                s.push_str(&format!(
                    "    \"final_accuracy\": {},\n",
                    num(p.final_accuracy)
                ));
                s.push_str(&format!(
                    "    \"resident_client_states_max\": {},\n",
                    p.resident_client_states_max
                ));
                s.push_str(&format!(
                    "    \"alloc_peak_live_bytes\": {},\n",
                    p.alloc_peak_live_bytes
                ));
                match p.vm_hwm_bytes {
                    None => s.push_str("    \"vm_hwm_bytes\": null\n"),
                    Some(b) => s.push_str(&format!("    \"vm_hwm_bytes\": {b}\n")),
                }
                s.push_str("  },\n");
            }
        }
        match &self.scaling {
            None => s.push_str("  \"threads_scaling\": null,\n"),
            Some(probe) => {
                s.push_str("  \"threads_scaling\": {\n");
                s.push_str(&format!("    \"threads\": {},\n", probe.threads));
                s.push_str(&format!("    \"host_cpus\": {},\n", probe.host_cpus));
                s.push_str(&format!("    \"clients\": {},\n", probe.clients));
                s.push_str(&format!("    \"rounds\": {},\n", probe.rounds));
                match probe.skipped {
                    Some(reason) => {
                        // No timing numbers on a skipped probe: a speedup
                        // measured on a single CPU is noise, not data. The
                        // byte-identity re-check ran anyway, so its verdict
                        // is always reported.
                        s.push_str(&format!("    \"skipped\": \"{}\",\n", escape(reason)));
                        s.push_str(&format!("    \"byte_identical\": {}\n", probe.identical));
                    }
                    None => {
                        s.push_str(&format!(
                            "    \"baseline_secs\": {},\n",
                            num(probe.baseline_secs)
                        ));
                        s.push_str(&format!(
                            "    \"parallel_secs\": {},\n",
                            num(probe.parallel_secs)
                        ));
                        s.push_str(&format!("    \"speedup\": {},\n", num(probe.speedup)));
                        s.push_str("    \"curve\": [\n");
                        for (i, p) in probe.curve.iter().enumerate() {
                            let comma = if i + 1 < probe.curve.len() { "," } else { "" };
                            s.push_str(&format!(
                                "      {{\"threads\": {}, \"secs\": {}, \"speedup\": {}, \
                                 \"identical\": {}}}{comma}\n",
                                p.threads,
                                num(p.secs),
                                num(p.speedup),
                                p.identical
                            ));
                        }
                        s.push_str("    ],\n");
                        s.push_str(&format!("    \"byte_identical\": {}\n", probe.identical));
                    }
                }
                s.push_str("  },\n");
            }
        }
        match &self.training {
            None => s.push_str("  \"training_throughput\": null,\n"),
            Some(t) => {
                s.push_str("  \"training_throughput\": {\n");
                s.push_str(&format!("    \"profile\": \"{}\",\n", escape(t.profile)));
                s.push_str(&format!("    \"dataset_size\": {},\n", t.dataset_size));
                s.push_str(&format!("    \"epochs\": {},\n", t.epochs));
                s.push_str(&format!("    \"batch_size\": {},\n", t.batch_size));
                s.push_str(&format!("    \"steps\": {},\n", t.steps));
                s.push_str(&format!("    \"samples\": {},\n", t.samples));
                s.push_str(&format!("    \"wall_secs\": {},\n", num(t.wall_secs)));
                s.push_str(&format!(
                    "    \"samples_per_sec\": {},\n",
                    num(t.samples_per_sec)
                ));
                s.push_str(&format!("    \"step_mean_ns\": {}\n", num(t.step_mean_ns)));
                s.push_str("  },\n");
            }
        }
        match &self.filter_wide {
            None => s.push_str("  \"filter_wide_probe\": null,\n"),
            Some(w) => {
                s.push_str("  \"filter_wide_probe\": {\n");
                s.push_str(&format!("    \"dim\": {},\n", w.dim));
                s.push_str(&format!("    \"bound\": {},\n", w.bound));
                s.push_str(&format!("    \"passes\": {},\n", w.passes));
                s.push_str(&format!("    \"updates_fed\": {},\n", w.updates_fed));
                s.push_str(&format!(
                    "    \"distances_computed\": {},\n",
                    w.distances_computed
                ));
                s.push_str("    \"per_pass\": [\n");
                for (i, p) in w.per_pass.iter().enumerate() {
                    let comma = if i + 1 < w.per_pass.len() { "," } else { "" };
                    s.push_str(&format!(
                        "      {{\"pass\": {}, \"nanos\": {}, \"alloc_bytes\": {}}}{comma}\n",
                        p.pass, p.nanos, p.alloc_bytes
                    ));
                }
                s.push_str("    ]\n");
                s.push_str("  },\n");
            }
        }
        match &self.event_schedule {
            None => s.push_str("  \"event_schedule\": null\n"),
            Some(p) => {
                s.push_str("  \"event_schedule\": {\n");
                s.push_str(&format!("    \"hold_ops\": {},\n", p.hold_ops));
                s.push_str(&format!(
                    "    \"wheel_flat_ratio\": {},\n",
                    num(p.wheel_flat_ratio)
                ));
                s.push_str(&format!(
                    "    \"pop_order_identical\": {},\n",
                    p.pop_order_identical
                ));
                s.push_str("    \"points\": [\n");
                for (i, point) in p.points.iter().enumerate() {
                    let comma = if i + 1 < p.points.len() { "," } else { "" };
                    s.push_str(&format!(
                        "      {{\"entries\": {}, \"heap_ns_per_event\": {}, \
                         \"wheel_ns_per_event\": {}}}{comma}\n",
                        point.entries,
                        num(point.heap_ns_per_event),
                        num(point.wheel_ns_per_event)
                    ));
                }
                s.push_str("    ]\n");
                s.push_str("  }\n");
            }
        }
        s.push('}');
        s.push('\n');
        s
    }

    /// Writes the rendered artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_balanced_json() {
        let json = BenchJson {
            binary: "repro",
            quick: true,
            threads: 2,
            experiments: vec![("table2".into(), 1.25), ("fig7".into(), 0.5)],
            total_secs: 1.75,
            phases: vec![PhaseRow {
                span: "local_training".into(),
                count: 10,
                total_secs: 0.9,
                mean_ns: 9e7,
                p50_ns: 9_000_000,
                p95_ns: 12_000_000,
                p99_ns: 13_000_000,
                alloc_bytes_total: 1_048_576,
                alloc_bytes_mean: 104_857.6,
                alloc_bytes_p99: 131_072,
                peak_live_bytes: 4_194_304,
            }],
            counters: vec![("deferred_requeued".into(), 7)],
            gauges: vec![GaugeRow {
                name: "buffer_occupancy".into(),
                count: 10,
                last: 16,
                mean: 15.2,
                max: 16,
            }],
            scaling: Some(ScalingProbe {
                threads: 4,
                host_cpus: 8,
                clients: 32,
                rounds: 10,
                baseline_secs: 2.0,
                parallel_secs: 0.8,
                speedup: 2.5,
                identical: true,
                curve: vec![
                    ScalingPoint {
                        threads: 2,
                        secs: 1.25,
                        speedup: 1.6,
                        identical: true,
                    },
                    ScalingPoint {
                        threads: 4,
                        secs: 0.8,
                        speedup: 2.5,
                        identical: true,
                    },
                ],
                skipped: None,
            }),
            rss: Some(RssProbe {
                alloc_peak_live_bytes: 8_388_608,
                alloc_total_bytes: 67_108_864,
                alloc_count: 120_000,
                vm_hwm_bytes: Some(25_165_824),
            }),
            training: Some(TrainingProbe {
                profile: "mnist",
                dataset_size: 4096,
                epochs: 3,
                batch_size: 32,
                steps: 384,
                samples: 12288,
                wall_secs: 0.25,
                samples_per_sec: 49152.0,
                step_mean_ns: 651041.7,
            }),
            filter_wide: Some(FilterWideProbe {
                dim: 131_072,
                bound: 32,
                passes: 2,
                updates_fed: 70,
                distances_computed: 140,
                phase: None,
                per_pass: vec![
                    FilterPassStat {
                        pass: 0,
                        nanos: 5_000_000,
                        alloc_bytes: 4096,
                    },
                    FilterPassStat {
                        pass: 1,
                        nanos: 4_000_000,
                        alloc_bytes: 0,
                    },
                ],
            }),
            event_schedule: Some(EventScheduleProbe {
                hold_ops: 100_000,
                points: vec![
                    EventSchedulePoint {
                        entries: 10_000,
                        heap_ns_per_event: 85.0,
                        wheel_ns_per_event: 40.0,
                    },
                    EventSchedulePoint {
                        entries: 1_000_000,
                        heap_ns_per_event: 240.0,
                        wheel_ns_per_event: 44.0,
                    },
                ],
                wheel_flat_ratio: 1.1,
                pop_order_identical: true,
            }),
            scale_1m: Some(ScaleProbe {
                clients: 1_000_000,
                rounds: 30,
                aggregation_bound: 16_384,
                participation: 0.5,
                shard_cache_capacity: 4096,
                rounds_completed: 30,
                updates_received: 491_520,
                loop_events: 1_966_080,
                wall_secs: 12.5,
                events_per_sec: 157_286.4,
                final_accuracy: 0.83,
                resident_client_states_max: 4096,
                alloc_peak_live_bytes: 268_435_456,
                vm_hwm_bytes: Some(402_653_184),
            }),
        }
        .render();
        // Structural sanity without a JSON parser: balanced braces/brackets
        // and the key fields present.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for needle in [
            "\"schema\": \"asyncfl-bench-v2\"",
            "\"binary\": \"repro\"",
            "\"speedup\": 2.500000",
            "\"byte_identical\": true",
            "\"span\": \"local_training\"",
            "\"alloc_bytes_total\": 1048576",
            "\"peak_live_bytes\": 4194304",
            "\"name\": \"deferred_requeued\", \"value\": 7",
            "\"name\": \"buffer_occupancy\"",
            "\"alloc_peak_live_bytes\": 8388608",
            "\"vm_hwm_bytes\": 25165824",
            "\"training_throughput\": {",
            "\"samples_per_sec\": 49152.000000",
            "\"steps\": 384",
            "\"curve\": [",
            "{\"threads\": 2, \"secs\": 1.250000, \"speedup\": 1.600000, \"identical\": true}",
            "\"filter_wide_probe\": {",
            "\"distances_computed\": 140",
            "{\"pass\": 1, \"nanos\": 4000000, \"alloc_bytes\": 0}",
            "\"scale_1m\": {",
            "\"clients\": 1000000",
            "\"shard_cache_capacity\": 4096",
            "\"resident_client_states_max\": 4096",
            "\"loop_events\": 1966080",
            "\"event_schedule\": {",
            "\"wheel_flat_ratio\": 1.100000",
            "\"pop_order_identical\": true",
            "{\"entries\": 1000000, \"heap_ns_per_event\": 240.000000, \
             \"wheel_ns_per_event\": 44.000000}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn skipped_scaling_probe_renders_reason_not_speedup() {
        let json = BenchJson {
            binary: "repro",
            scaling: Some(ScalingProbe {
                threads: 2,
                host_cpus: 1,
                clients: 16,
                rounds: 4,
                baseline_secs: 0.0,
                parallel_secs: 0.0,
                speedup: 0.0,
                identical: true,
                curve: Vec::new(),
                skipped: Some("single-cpu host"),
            }),
            ..Default::default()
        }
        .render();
        assert!(json.contains("\"skipped\": \"single-cpu host\""), "{json}");
        assert!(
            !json.contains("\"speedup\""),
            "skipped probe must not report a speedup: {json}"
        );
        // The identity re-check runs even when timing is skipped, so its
        // verdict is always present.
        assert!(json.contains("\"byte_identical\": true"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn scaling_probe_checks_identity_even_without_timing() {
        // On a single-CPU host the probe must refuse to time but still
        // re-check determinism; on a multi-CPU host it times a ladder and
        // every point must reproduce the sequential result.
        let probe = run_scaling_probe(2, true);
        assert!(probe.identical, "threads=1 vs N diverged");
        if probe.host_cpus == 1 {
            assert_eq!(probe.skipped, Some("single-cpu host"));
            assert_eq!(probe.baseline_secs, 0.0);
            assert!(probe.curve.is_empty());
        } else {
            assert!(probe.skipped.is_none());
            assert!(probe.baseline_secs > 0.0);
            assert!(!probe.curve.is_empty());
            assert_eq!(probe.curve.last().map(|p| p.threads), Some(2));
        }
    }

    #[test]
    fn cpu_list_parser_handles_kernel_format() {
        assert_eq!(parse_cpu_list("0-3\n"), Some(4));
        assert_eq!(parse_cpu_list("0"), Some(1));
        assert_eq!(parse_cpu_list("0-3,5,7-8"), Some(7));
        assert_eq!(parse_cpu_list(""), None);
        assert_eq!(parse_cpu_list("3-1"), None);
        assert_eq!(parse_cpu_list("garbage"), None);
    }

    #[test]
    fn host_cpu_resolution_prefers_override_then_sysfs_fallback() {
        // Explicit override wins.
        assert_eq!(resolve_host_cpus(Some("6"), 1, Some("0-7")), 6);
        // Garbage override falls through.
        assert_eq!(resolve_host_cpus(Some("zero"), 4, None), 4);
        // available_parallelism > 1 is trusted.
        assert_eq!(resolve_host_cpus(None, 8, Some("0-1")), 8);
        // available_parallelism == 1 consults the kernel's online list —
        // the bug the old probe had: it reported "single-cpu host" on
        // multi-core machines whenever affinity masked the process.
        assert_eq!(resolve_host_cpus(None, 1, Some("0-3")), 4);
        // No list at all: fall back to what we have.
        assert_eq!(resolve_host_cpus(None, 1, None), 1);
    }

    #[test]
    fn vm_hwm_parser_handles_kernel_format() {
        let status = "Name:\trepro\nVmPeak:\t  123456 kB\nVmHWM:\t   20480 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(20480 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn rss_probe_is_readable_on_linux() {
        let probe = run_rss_probe();
        // The bench *test* binary does not install the counting allocator,
        // so the allocator side may be zero — but /proc must parse.
        if cfg!(target_os = "linux") {
            let hwm = probe.vm_hwm_bytes.expect("VmHWM readable on Linux");
            assert!(hwm > 0);
        }
    }

    #[test]
    fn absent_probes_render_as_null() {
        let json = BenchJson {
            binary: "detection",
            ..Default::default()
        }
        .render();
        assert!(json.contains("\"threads_scaling\": null"), "{json}");
        assert!(json.contains("\"training_throughput\": null"), "{json}");
        assert!(json.contains("\"filter_wide_probe\": null"), "{json}");
        assert!(json.contains("\"peak_rss_estimate\": null"), "{json}");
        assert!(json.contains("\"scale_1m\": null"), "{json}");
        assert!(json.contains("\"event_schedule\": null"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn event_schedule_probe_times_both_queues_and_replays_identically() {
        // The exact probe path at debug-build friendly depths; the shipped
        // artifact runs the same code at 10⁴–10⁶ entries.
        let probe = run_event_schedule_probe_sized(&[256, 2_048], 2_000);
        assert_eq!(probe.points.len(), 2);
        assert_eq!(probe.points[0].entries, 256);
        assert_eq!(probe.points[1].entries, 2_048);
        for point in &probe.points {
            assert!(point.heap_ns_per_event > 0.0, "{probe:?}");
            assert!(point.wheel_ns_per_event > 0.0, "{probe:?}");
        }
        assert!(probe.wheel_flat_ratio >= 1.0, "{probe:?}");
        assert!(
            probe.pop_order_identical,
            "wheel and heap popped differently"
        );
    }

    #[test]
    fn filter_wide_probe_reports_per_pass_stats() {
        let probe = run_filter_wide_probe(true);
        assert!(probe.dim >= 100_000, "wide profile must be ≥1e5-dim");
        assert_eq!(probe.per_pass.len(), probe.passes);
        assert!(probe.updates_fed >= probe.bound);
        assert!(probe.updates_fed <= probe.passes * probe.bound);
        assert!(probe.distances_computed > 0);
        let row = probe.phase.expect("filter span observed");
        assert_eq!(row.span, "filter_wide");
        assert_eq!(row.count, probe.passes as u64);
        assert!(probe.per_pass.iter().all(|p| p.nanos > 0));
    }

    #[test]
    fn scale_probe_keeps_resident_state_at_the_cache_bound() {
        // The exact probe path at a debug-build friendly population; the
        // shipped artifact runs the same code at one million clients.
        let probe = run_scale_probe_sized(2_048, true);
        assert_eq!(probe.clients, 2_048);
        assert_eq!(probe.rounds_completed, probe.rounds);
        assert!(probe.loop_events > 0);
        assert!(probe.events_per_sec > 0.0);
        assert!(probe.updates_received >= probe.rounds * probe.aggregation_bound as u64);
        // The scale contract the artifact exists to pin: resident client
        // state is the shard cache, not the population.
        assert!(probe.resident_client_states_max > 0);
        assert!(probe.resident_client_states_max <= probe.shard_cache_capacity as u64);
        if cfg!(target_os = "linux") {
            assert!(probe.vm_hwm_bytes.is_some());
        }
    }

    #[test]
    fn training_probe_reports_consistent_counts() {
        let probe = run_training_probe(true);
        assert_eq!(probe.samples, probe.epochs * probe.dataset_size);
        assert_eq!(
            probe.steps,
            probe.epochs * probe.dataset_size.div_ceil(probe.batch_size)
        );
        assert!(probe.samples_per_sec > 0.0);
        assert!(probe.step_mean_ns > 0.0);
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_never_reach_the_artifact() {
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        assert_eq!(num(1.5), "1.500000");
    }
}
