//! `--trace <path.jsonl>` support shared by the bench binaries.
//!
//! A [`TraceHandle`] fans the run's event stream out to two sinks: a
//! [`JsonlSink`] writing the trace file and a [`MetricsRegistry`] folding
//! the same events into the end-of-run summary table (event counts,
//! verdict counts, p50/p95/p99 span latency). The JSONL schema is
//! documented in `docs/TUTORIAL.md` ("Tracing a run").

use asyncfl_telemetry::{FanoutSink, JsonlSink, MetricsRegistry, SharedSink, Sink};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A JSONL trace file plus a metrics registry fed by the same events.
#[derive(Debug)]
pub struct TraceHandle {
    registry: Arc<MetricsRegistry>,
    jsonl: Arc<JsonlSink>,
    sink: SharedSink,
    path: PathBuf,
}

impl TraceHandle {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let registry = Arc::new(MetricsRegistry::new());
        let jsonl = Arc::new(JsonlSink::create(&path)?);
        let sink = SharedSink::new(FanoutSink::new(vec![
            SharedSink::from_arc(Arc::clone(&registry) as Arc<dyn Sink>),
            SharedSink::from_arc(Arc::clone(&jsonl) as Arc<dyn Sink>),
        ]));
        Ok(Self {
            registry,
            jsonl,
            sink,
            path,
        })
    }

    /// A cloneable sink handle to pass into runs.
    pub fn sink(&self) -> SharedSink {
        self.sink.clone()
    }

    /// The registry accumulating this trace's metrics.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Flushes the trace file and renders the end-of-run summary.
    pub fn finish(&self) -> String {
        if let Err(e) = self.jsonl.flush() {
            eprintln!("warning: flushing {} failed: {e}", self.path.display());
        }
        let mut out = self.registry.render_table();
        out.push_str(&format!(
            "  trace: {} events -> {}",
            self.jsonl.lines_written(),
            self.path.display()
        ));
        if self.jsonl.io_errors() > 0 {
            out.push_str(&format!(" ({} write errors!)", self.jsonl.io_errors()));
        }
        out.push('\n');
        out
    }
}
