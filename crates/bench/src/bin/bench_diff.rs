//! `asyncfl-bench-diff` — compare two `BENCH_*.json` artifacts.
//!
//! ```text
//! asyncfl-bench-diff old.json new.json                # markdown delta table
//! asyncfl-bench-diff old.json new.json --json         # machine-readable
//! asyncfl-bench-diff old.json new.json --gate         # exit 1 on regression
//!     [--max-mean-regress 25] [--max-p99-regress 50]
//!     [--max-alloc-regress 10] [--phases filter,aggregate,local_training]
//!     [--out report.md]
//! ```
//!
//! Exit codes: `0` ok (or gate passed), `1` gate breached, `2` usage or
//! parse error. Without `--gate`, regressions are reported but the exit
//! code stays `0` — the gate is opt-in so exploratory diffs never fail a
//! shell pipeline.

#![forbid(unsafe_code)]

use asyncfl_bench::diff::{diff, parse_json, summarize, DiffReport, GateConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: asyncfl-bench-diff <old.json> <new.json> \
[--json] [--gate] [--max-mean-regress PCT] [--max-p99-regress PCT] \
[--max-alloc-regress PCT] [--max-filter-alloc-regress PCT] \
[--phases a,b,c] [--out FILE]";

/// Default phases the gate watches: the three hot paths whose cost the
/// paper's overhead claim (§6) is about, plus the wide-model filter
/// profile (distance kernels at ≥1e5 dims). The differ skips phases
/// absent on either side, so gating `filter_wide` is safe against
/// baselines that predate the probe.
const DEFAULT_GATED: &[&str] = &["filter", "aggregate", "local_training", "filter_wide"];

struct Cli {
    old_path: String,
    new_path: String,
    json: bool,
    gate: bool,
    out: Option<String>,
    phases: Vec<String>,
    config: GateConfig,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut positional = Vec::new();
    let mut cli = Cli {
        old_path: String::new(),
        new_path: String::new(),
        json: false,
        gate: false,
        out: None,
        phases: DEFAULT_GATED.iter().map(|s| s.to_string()).collect(),
        config: GateConfig::default(),
    };
    let mut i = 0;
    let take_value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--json" => cli.json = true,
            "--gate" => cli.gate = true,
            "--out" => cli.out = Some(take_value(&mut i, "--out")?),
            "--phases" => {
                cli.phases = take_value(&mut i, "--phases")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--max-mean-regress" => {
                cli.config.max_mean_regress_pct = take_value(&mut i, "--max-mean-regress")?
                    .parse()
                    .map_err(|e| format!("bad --max-mean-regress: {e}"))?;
            }
            "--max-p99-regress" => {
                cli.config.max_p99_regress_pct =
                    take_value(&mut i, "--max-p99-regress")?
                        .parse()
                        .map_err(|e| format!("bad --max-p99-regress: {e}"))?;
            }
            "--max-alloc-regress" => {
                cli.config.max_alloc_regress_pct = take_value(&mut i, "--max-alloc-regress")?
                    .parse()
                    .map_err(|e| format!("bad --max-alloc-regress: {e}"))?;
            }
            "--max-filter-alloc-regress" => {
                cli.config.max_filter_alloc_regress_pct =
                    take_value(&mut i, "--max-filter-alloc-regress")?
                        .parse()
                        .map_err(|e| format!("bad --max-filter-alloc-regress: {e}"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => positional.push(path.to_string()),
        }
        i += 1;
    }
    match positional.len() {
        2 => {
            cli.old_path = positional.remove(0);
            cli.new_path = positional.remove(0);
            Ok(cli)
        }
        n => Err(format!("expected 2 artifact paths, got {n}")),
    }
}

fn load(path: &str) -> Result<asyncfl_bench::diff::BenchSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    summarize(&doc).map_err(|e| format!("{path}: {e}"))
}

fn run(cli: &Cli) -> Result<DiffReport, String> {
    let old = load(&cli.old_path)?;
    let new = load(&cli.new_path)?;
    Ok(diff(old, new, &cli.phases, cli.config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&cli) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let rendered = if cli.json {
        report.render_json()
    } else {
        report.render_markdown()
    };
    print!("{rendered}");
    if let Some(out) = &cli.out {
        // --out always writes the markdown view (the CI artifact),
        // independent of what stdout carries.
        if let Err(e) = std::fs::write(out, report.render_markdown()) {
            eprintln!("error: {out}: {e}");
            return ExitCode::from(2);
        }
    }
    if cli.gate && !report.breaches.is_empty() {
        eprintln!(
            "gate: {} breach(es) beyond thresholds (mean {}%, p99 {}%, alloc {}%, \
             filter alloc {}%)",
            report.breaches.len(),
            cli.config.max_mean_regress_pct,
            cli.config.max_p99_regress_pct,
            cli.config.max_alloc_regress_pct,
            cli.config.max_filter_alloc_regress_pct
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
