//! `detection` — detector-quality table (not in the paper).
//!
//! Final accuracy hides *how* a defense wins; this binary reports the
//! detection metrics directly: precision, recall, false-positive rate and
//! AUC of the AsyncFilter suspicious score, per attack, on the
//! paper-default FashionMNIST setting.
//!
//! ```text
//! cargo run --release -p asyncfl-bench --bin detection [-- --quick]
//! ```

use asyncfl_analysis::detection::{auc, LabelledScore};
use asyncfl_analysis::report::Table;
use asyncfl_attacks::AttackKind;
use asyncfl_core::asyncfilter::{AsyncFilter, ScoreRecord};
use asyncfl_core::update::{ClientUpdate, FilterContext, FilterOutcome, UpdateFilter};
use asyncfl_data::DatasetProfile;
use asyncfl_sim::config::SimConfig;
use asyncfl_sim::runner::Simulation;
use parking_lot::Mutex;
use std::sync::Arc;

/// Delegates to AsyncFilter while archiving every round's scores.
struct ScoreArchive {
    inner: AsyncFilter,
    records: Arc<Mutex<Vec<ScoreRecord>>>,
}

impl UpdateFilter for ScoreArchive {
    fn name(&self) -> &str {
        "ScoreArchive"
    }

    fn filter(&mut self, updates: Vec<ClientUpdate>, ctx: &FilterContext<'_>) -> FilterOutcome {
        let outcome = self.inner.filter(updates, ctx);
        self.records
            .lock()
            .extend_from_slice(self.inner.last_scores());
        outcome
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut table = Table::new(
        "AsyncFilter detection quality (FashionMNIST, paper-default setting)",
        vec![
            "accuracy".into(),
            "precision".into(),
            "recall".into(),
            "FPR".into(),
            "score AUC".into(),
        ],
    );
    for attack in AttackKind::ATTACKS_ONLY {
        let mut cfg = SimConfig::paper_default(DatasetProfile::FashionMnist);
        if quick {
            cfg.rounds = 16;
            cfg.test_samples = 800;
        }
        let records = Arc::new(Mutex::new(Vec::new()));
        let filter = ScoreArchive {
            inner: AsyncFilter::default(),
            records: Arc::clone(&records),
        };
        let mut sim = Simulation::new(cfg);
        let result = sim.run(Box::new(filter), attack);
        let observations: Vec<LabelledScore> = records
            .lock()
            .iter()
            .map(|r| (r.score, r.truth_malicious))
            .collect();
        let d = result.detection;
        table.push_row(
            attack.label(),
            vec![
                format!("{:.1}%", result.final_accuracy * 100.0),
                format!("{:.2}", d.precision()),
                format!("{:.2}", d.recall()),
                format!("{:.3}", d.false_positive_rate()),
                format!("{:.3}", auc(&observations)),
            ],
        );
        eprint!(".");
    }
    eprintln!();
    println!("{}", table.to_markdown());
    println!(
        "AUC reads the suspicious score as a detector independent of the 3-means \
         threshold: 0.5 is uninformative, 1.0 a perfect separator."
    );
}
