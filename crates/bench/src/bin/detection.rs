//! `detection` — detector-quality table (not in the paper).
//!
//! Final accuracy hides *how* a defense wins; this binary reports the
//! detection metrics directly: precision, recall, false-positive rate and
//! AUC of the AsyncFilter suspicious score, per attack, on the
//! paper-default FashionMNIST setting.
//!
//! ```text
//! cargo run --release -p asyncfl-bench --bin detection \
//!     [-- --quick] [--threads N] [--trace FILE] [--bench-json FILE]
//! ```
//!
//! With `--trace FILE` every run also streams telemetry events into a JSONL
//! file, and the binary cross-checks the trace against its own numbers: the
//! `filter_score` verdict counts must reconcile exactly with the summed
//! `DetectionStats` confusion matrix. `--threads N` runs each simulation on
//! the deterministic worker pool; `--bench-json FILE` writes per-attack wall
//! clocks and the span breakdown as a machine-readable perf artifact.

use asyncfl_analysis::detection::{auc, LabelledScore};
use asyncfl_analysis::report::Table;
use asyncfl_attacks::AttackKind;
use asyncfl_bench::perf::{counter_rows, gauge_rows, phase_rows, run_rss_probe, BenchJson};
use asyncfl_bench::TraceHandle;
use asyncfl_core::aggregation::MeanAggregator;
use asyncfl_core::asyncfilter::{AsyncFilter, ScoreRecord};
use asyncfl_core::update::{ClientUpdate, FilterContext, FilterOutcome, UpdateFilter};
use asyncfl_data::DatasetProfile;
use asyncfl_sim::config::SimConfig;
use asyncfl_sim::metrics::DetectionStats;
use asyncfl_sim::runner::{build_attack, Simulation};
use asyncfl_telemetry::metrics::MetricsRegistry;
use asyncfl_telemetry::{SharedSink, Sink, Stopwatch, Verdict};
use std::sync::{Arc, Mutex};

// Count allocations so --bench-json reports real alloc/RSS numbers.
#[global_allocator]
static ALLOC: asyncfl_telemetry::alloc::CountingAllocator =
    asyncfl_telemetry::alloc::CountingAllocator::new();

/// Delegates to AsyncFilter while archiving every round's scores.
struct ScoreArchive {
    inner: AsyncFilter,
    records: Arc<Mutex<Vec<ScoreRecord>>>,
}

impl UpdateFilter for ScoreArchive {
    fn name(&self) -> &str {
        "ScoreArchive"
    }

    fn filter(&mut self, updates: Vec<ClientUpdate>, ctx: &FilterContext<'_>) -> FilterOutcome {
        let outcome = self.inner.filter(updates, ctx);
        self.records
            .lock()
            .unwrap()
            .extend_from_slice(self.inner.last_scores());
        outcome
    }

    fn last_scores(&self) -> &[ScoreRecord] {
        self.inner.last_scores()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .map_or(1, |i| {
            let value = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--threads requires a value");
                std::process::exit(2);
            });
            value.parse().unwrap_or_else(|e| {
                eprintln!("invalid --threads '{value}': {e}");
                std::process::exit(2);
            })
        })
        .max(1);
    let bench_json_path = args.iter().position(|a| a == "--bench-json").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--bench-json requires a file path");
                std::process::exit(2);
            })
            .clone()
    });
    let trace = args.iter().position(|a| a == "--trace").map(|i| {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--trace requires a file path");
            std::process::exit(2);
        });
        TraceHandle::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create --trace file {path}: {e}");
            std::process::exit(1);
        })
    });
    // --bench-json without --trace still needs span histograms.
    let standalone_registry: Option<Arc<MetricsRegistry>> =
        if bench_json_path.is_some() && trace.is_none() {
            Some(Arc::new(MetricsRegistry::new()))
        } else {
            None
        };
    let run_sink = |trace: Option<&TraceHandle>| -> Option<SharedSink> {
        trace.map(TraceHandle::sink).or_else(|| {
            standalone_registry
                .as_ref()
                .map(|r| SharedSink::from_arc(Arc::clone(r) as Arc<dyn Sink>))
        })
    };

    let mut experiment_secs: Vec<(String, f64)> = Vec::new();
    let mut totals = DetectionStats::default();
    let mut table = Table::new(
        "AsyncFilter detection quality (FashionMNIST, paper-default setting)",
        vec![
            "accuracy".into(),
            "precision".into(),
            "recall".into(),
            "FPR".into(),
            "score AUC".into(),
        ],
    );
    for attack in AttackKind::ATTACKS_ONLY {
        let started = Stopwatch::start();
        let mut cfg = SimConfig::paper_default(DatasetProfile::FashionMnist);
        cfg.threads = threads;
        if quick {
            cfg.rounds = 16;
            cfg.test_samples = 800;
        }
        let records = Arc::new(Mutex::new(Vec::new()));
        let filter = ScoreArchive {
            inner: AsyncFilter::default(),
            records: Arc::clone(&records),
        };
        let mut sim = Simulation::new(cfg);
        let built = build_attack(attack, sim.config().num_clients, sim.config().num_malicious);
        let result = sim.run_with_sink(
            Box::new(filter),
            built,
            Box::new(MeanAggregator::new()),
            run_sink(trace.as_ref()),
        );
        let observations: Vec<LabelledScore> = records
            .lock()
            .unwrap()
            .iter()
            .map(|r| (r.score, r.truth_malicious))
            .collect();
        let d = result.detection;
        totals.absorb((
            d.true_positives,
            d.false_positives,
            d.false_negatives,
            d.true_negatives,
        ));
        table.push_row(
            attack.label(),
            vec![
                format!("{:.1}%", result.final_accuracy * 100.0),
                format!("{:.2}", d.precision()),
                format!("{:.2}", d.recall()),
                format!("{:.3}", d.false_positive_rate()),
                format!("{:.3}", auc(&observations)),
            ],
        );
        experiment_secs.push((attack.label().to_string(), started.elapsed_secs()));
        eprint!(".");
    }
    eprintln!();
    println!("{}", table.to_markdown());
    println!(
        "AUC reads the suspicious score as a detector independent of the 3-means \
         threshold: 0.5 is uninformative, 1.0 a perfect separator."
    );

    if let Some(handle) = &trace {
        println!();
        print!("{}", handle.finish());
        let registry = handle.registry();
        // DetectionStats counts terminal verdicts only; deferred events are
        // re-filtering passes of the same update and stay outside it.
        let rejected = registry.verdict_count(Verdict::Rejected);
        let accepted = registry.verdict_count(Verdict::Accepted);
        let want_rejected = (totals.true_positives + totals.false_positives) as u64;
        let want_accepted = (totals.false_negatives + totals.true_negatives) as u64;
        println!(
            "reconciliation: rejected events {rejected} vs DetectionStats TP+FP {want_rejected}; \
             accepted events {accepted} vs FN+TN {want_accepted}"
        );
        if rejected != want_rejected || accepted != want_accepted {
            eprintln!("error: trace verdict counts do not match DetectionStats");
            std::process::exit(1);
        }
        println!("reconciliation: OK (trace verdicts match the confusion matrix exactly)");
    }

    if let Some(path) = bench_json_path {
        let registry: Option<&MetricsRegistry> = trace
            .as_ref()
            .map(|h| h.registry())
            .or(standalone_registry.as_deref());
        let artifact = BenchJson {
            binary: "detection",
            quick,
            threads,
            total_secs: experiment_secs.iter().map(|(_, s)| s).sum(),
            experiments: experiment_secs,
            phases: registry.map(phase_rows).unwrap_or_default(),
            counters: registry.map(counter_rows).unwrap_or_default(),
            gauges: registry.map(gauge_rows).unwrap_or_default(),
            scaling: None,
            training: None,
            filter_wide: None,
            event_schedule: None,
            scale_1m: None,
            rss: Some(run_rss_probe()),
        };
        if let Err(e) = artifact.write(&path) {
            eprintln!("failed to write --bench-json {path}: {e}");
            std::process::exit(1);
        }
        println!("bench json written to {path}");
    }
}
