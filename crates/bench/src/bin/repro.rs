//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                 # show available experiments
//! repro table2               # one artifact
//! repro table2 fig7          # several
//! repro all                  # everything, in paper order
//!
//! Options:
//!   --quick        shorter horizon (CI smoke run)
//!   --seed N       base seed (default 42; figs. use seed..seed+2)
//!   --threads N    worker threads (default: min(cores, 8))
//!   --csv DIR      additionally write each measured table as CSV into DIR
//!   --trace FILE   write a JSONL event trace and print a telemetry summary
//! ```

use asyncfl_bench::{ExperimentId, RunOptions, TraceHandle};
use std::str::FromStr;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--seed N] [--threads N] [--csv DIR] [--trace FILE] \
             <experiment|all|list>..."
        );
        std::process::exit(2);
    }

    let mut opts = RunOptions::default();
    let mut base_seed = 42u64;
    let mut targets: Vec<ExperimentId> = Vec::new();
    let mut list_only = false;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--seed requires a value");
                    std::process::exit(2);
                });
                base_seed = value.parse().unwrap_or_else(|e| {
                    eprintln!("invalid --seed '{value}': {e}");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--threads requires a value");
                    std::process::exit(2);
                });
                opts.threads = value.parse().unwrap_or_else(|e| {
                    eprintln!("invalid --threads '{value}': {e}");
                    std::process::exit(2);
                });
                if opts.threads == 0 {
                    eprintln!("--threads must be positive");
                    std::process::exit(2);
                }
            }
            "--csv" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                });
                csv_dir = Some(std::path::PathBuf::from(value));
            }
            "--trace" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--trace requires a file path");
                    std::process::exit(2);
                });
                trace_path = Some(std::path::PathBuf::from(value));
            }
            "list" => list_only = true,
            "all" => targets.extend(ExperimentId::ALL),
            other => match ExperimentId::from_str(other) {
                Ok(id) => targets.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
        }
    }
    opts.seeds = vec![base_seed, base_seed + 1, base_seed + 2];

    if list_only {
        println!("Available experiments:");
        for id in ExperimentId::ALL {
            println!("  {:8} {}", id.name(), id.description());
        }
        return;
    }
    if targets.is_empty() {
        eprintln!("no experiments requested; try 'repro list'");
        std::process::exit(2);
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --csv directory {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let trace = trace_path.map(|path| {
        let handle = TraceHandle::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create --trace file {}: {e}", path.display());
            std::process::exit(1);
        });
        opts.sink = Some(handle.sink());
        handle
    });

    for id in targets {
        let started = std::time::Instant::now();
        println!("== {} — {} ==\n", id.name(), id.description());
        let report = id.run_report(&opts);
        print!("{}", report.to_markdown());
        if let Some(dir) = &csv_dir {
            for (i, table) in report.tables.iter().enumerate() {
                let path = dir.join(format!("{}_{}.csv", id.name(), i));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("failed to write {}: {e}", path.display());
                }
            }
        }
        println!("(completed in {:.1?})\n", started.elapsed());
    }

    if let Some(handle) = &trace {
        print!("{}", handle.finish());
    }
}
