//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                 # show available experiments
//! repro table2               # one artifact
//! repro table2 fig7          # several
//! repro all                  # everything, in paper order
//!
//! Options:
//!   --quick           shorter horizon (CI smoke run)
//!   --seed N          base seed (default 42; figs. use seed..seed+2)
//!   --threads N       worker threads (default: min(cores, 8)); also sets
//!                     the threads-scaling probe size for --bench-json
//!   --csv DIR         additionally write each measured table as CSV into DIR
//!   --trace FILE      write a JSONL event trace and print a telemetry summary
//!   --bench-json FILE write a perf summary (wall clocks, per-phase span
//!                     breakdown, threads=1 vs threads=N scaling probe)
//! ```

use asyncfl_bench::perf::{
    counter_rows, gauge_rows, phase_rows, run_event_schedule_probe, run_filter_wide_probe,
    run_rss_probe, run_scale_probe, run_scaling_probe, run_training_probe, BenchJson,
};
use asyncfl_bench::{ExperimentId, RunOptions, TraceHandle};
use asyncfl_telemetry::metrics::MetricsRegistry;
use asyncfl_telemetry::{SharedSink, Sink, Stopwatch};
use std::str::FromStr;
use std::sync::Arc;

// Count every allocation the harness makes, so per-phase alloc_bytes and
// the peak_rss_estimate probe in --bench-json measure real numbers.
#[global_allocator]
static ALLOC: asyncfl_telemetry::alloc::CountingAllocator =
    asyncfl_telemetry::alloc::CountingAllocator::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: repro [--quick] [--seed N] [--threads N] [--csv DIR] [--trace FILE] \
             [--bench-json FILE] <experiment|all|list>..."
        );
        std::process::exit(2);
    }

    let mut opts = RunOptions::default();
    let mut base_seed = 42u64;
    let mut targets: Vec<ExperimentId> = Vec::new();
    let mut list_only = false;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut bench_json_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--seed requires a value");
                    std::process::exit(2);
                });
                base_seed = value.parse().unwrap_or_else(|e| {
                    eprintln!("invalid --seed '{value}': {e}");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--threads requires a value");
                    std::process::exit(2);
                });
                opts.threads = value.parse().unwrap_or_else(|e| {
                    eprintln!("invalid --threads '{value}': {e}");
                    std::process::exit(2);
                });
                if opts.threads == 0 {
                    eprintln!("--threads must be positive");
                    std::process::exit(2);
                }
            }
            "--csv" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                });
                csv_dir = Some(std::path::PathBuf::from(value));
            }
            "--trace" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--trace requires a file path");
                    std::process::exit(2);
                });
                trace_path = Some(std::path::PathBuf::from(value));
            }
            "--bench-json" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--bench-json requires a file path");
                    std::process::exit(2);
                });
                bench_json_path = Some(value.clone());
            }
            "list" => list_only = true,
            "all" => targets.extend(ExperimentId::ALL),
            other => match ExperimentId::from_str(other) {
                Ok(id) => targets.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
        }
    }
    opts.seeds = vec![base_seed, base_seed + 1, base_seed + 2];

    if list_only {
        println!("Available experiments:");
        for id in ExperimentId::ALL {
            println!("  {:8} {}", id.name(), id.description());
        }
        return;
    }
    if targets.is_empty() {
        eprintln!("no experiments requested; try 'repro list'");
        std::process::exit(2);
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --csv directory {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    let trace = trace_path.map(|path| {
        let handle = TraceHandle::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create --trace file {}: {e}", path.display());
            std::process::exit(1);
        });
        opts.sink = Some(handle.sink());
        handle
    });

    // --bench-json without --trace still needs span histograms: attach a
    // bare metrics registry as the sink (the trace handle already embeds
    // one when tracing is on).
    let standalone_registry: Option<Arc<MetricsRegistry>> =
        if bench_json_path.is_some() && trace.is_none() {
            let registry = Arc::new(MetricsRegistry::new());
            opts.sink = Some(SharedSink::from_arc(Arc::clone(&registry) as Arc<dyn Sink>));
            Some(registry)
        } else {
            None
        };

    let mut experiment_secs: Vec<(String, f64)> = Vec::new();
    for id in targets {
        let started = Stopwatch::start();
        println!("== {} — {} ==\n", id.name(), id.description());
        let report = id.run_report(&opts);
        print!("{}", report.to_markdown());
        if let Some(dir) = &csv_dir {
            for (i, table) in report.tables.iter().enumerate() {
                let path = dir.join(format!("{}_{}.csv", id.name(), i));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("failed to write {}: {e}", path.display());
                }
            }
        }
        let elapsed = started.elapsed();
        experiment_secs.push((id.name().to_string(), elapsed.as_secs_f64()));
        println!("(completed in {elapsed:.1?})\n");
    }

    if let Some(handle) = &trace {
        print!("{}", handle.finish());
    }

    if let Some(path) = bench_json_path {
        println!(
            "Running threads-scaling probe (threads=1 vs threads={})...",
            opts.threads.max(2)
        );
        let probe = run_scaling_probe(opts.threads, opts.quick);
        match probe.skipped {
            Some(reason) => println!(
                "probe: timing skipped ({reason}); byte-identical: {}",
                probe.identical
            ),
            None => println!(
                "probe: baseline {:.2}s, parallel {:.2}s, speedup {:.2}x, identical: {}",
                probe.baseline_secs, probe.parallel_secs, probe.speedup, probe.identical
            ),
        }
        println!("Running local-training throughput probe...");
        let training = run_training_probe(opts.quick);
        println!(
            "probe: {} samples in {:.2}s = {:.0} samples/sec ({} steps, {:.0} ns/step)",
            training.samples,
            training.wall_secs,
            training.samples_per_sec,
            training.steps,
            training.step_mean_ns
        );
        println!("Running wide-model filter probe...");
        let wide = run_filter_wide_probe(opts.quick);
        match &wide.phase {
            Some(row) => println!(
                "probe: dim {}, {} passes, {} distances, filter_wide mean {:.2} ms \
                 (p99 {:.2} ms, {:.0} alloc bytes/pass)",
                wide.dim,
                wide.passes,
                wide.distances_computed,
                row.mean_ns / 1e6,
                row.p99_ns as f64 / 1e6,
                row.alloc_bytes_mean
            ),
            None => println!("probe: dim {}, no filter spans observed", wide.dim),
        }
        println!("Running event-scheduling probe (wheel vs heap)...");
        let schedule = run_event_schedule_probe(opts.quick);
        for point in &schedule.points {
            println!(
                "probe: {:>9} entries: heap {:.0} ns/event, wheel {:.0} ns/event",
                point.entries, point.heap_ns_per_event, point.wheel_ns_per_event
            );
        }
        println!(
            "probe: wheel flatness ratio {:.2}, pop order identical: {}",
            schedule.wheel_flat_ratio, schedule.pop_order_identical
        );
        println!("Running million-client scale probe...");
        let scale = run_scale_probe(opts.quick);
        println!(
            "probe: {} clients, {}/{} rounds, {} events in {:.2}s = {:.0} events/sec, \
             resident max {} (cache {}), alloc peak {:.1} MiB, vm_hwm {}",
            scale.clients,
            scale.rounds_completed,
            scale.rounds,
            scale.loop_events,
            scale.wall_secs,
            scale.events_per_sec,
            scale.resident_client_states_max,
            scale.shard_cache_capacity,
            scale.alloc_peak_live_bytes as f64 / (1024.0 * 1024.0),
            scale
                .vm_hwm_bytes
                .map_or("unreadable".to_string(), |b| format!(
                    "{:.1} MiB",
                    b as f64 / (1024.0 * 1024.0)
                )),
        );
        let registry: Option<&MetricsRegistry> = trace
            .as_ref()
            .map(|h| h.registry())
            .or(standalone_registry.as_deref());
        // The wide probe's span summary joins the phases table (named
        // `filter_wide`), so asyncfl-bench-diff gates it like any phase.
        let mut phases = registry.map(phase_rows).unwrap_or_default();
        phases.extend(wide.phase.clone());
        let artifact = BenchJson {
            binary: "repro",
            quick: opts.quick,
            threads: opts.threads,
            total_secs: experiment_secs.iter().map(|(_, s)| s).sum(),
            experiments: experiment_secs,
            phases,
            counters: registry.map(counter_rows).unwrap_or_default(),
            gauges: registry.map(gauge_rows).unwrap_or_default(),
            scaling: Some(probe),
            training: Some(training),
            filter_wide: Some(wide),
            event_schedule: Some(schedule),
            scale_1m: Some(scale),
            rss: Some(run_rss_probe()),
        };
        if let Err(e) = artifact.write(&path) {
            eprintln!("failed to write --bench-json {path}: {e}");
            std::process::exit(1);
        }
        println!("bench json written to {path}");
    }
}
