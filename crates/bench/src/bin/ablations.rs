//! `ablations` — measure the design choices `DESIGN.md` calls out.
//!
//! Each ablation varies exactly one `AsyncFilterConfig` knob against the
//! default configuration, on FashionMNIST under the no-attack / GD / Min-Sum
//! columns (the three regimes where the knobs trade off):
//!
//! ```text
//! cargo run --release -p asyncfl-bench --bin ablations \
//!     [-- --quick] [--threads N] [--trace FILE] [--bench-json FILE]
//! ```
//!
//! `--threads N` runs each simulation on the deterministic worker pool;
//! `--bench-json FILE` writes per-variant wall clocks and the telemetry span
//! breakdown as a machine-readable perf artifact.

use asyncfl_analysis::report::{pct, Table};
use asyncfl_attacks::AttackKind;
use asyncfl_bench::perf::{counter_rows, gauge_rows, phase_rows, run_rss_probe, BenchJson};
use asyncfl_bench::TraceHandle;
use asyncfl_core::aggregation::MeanAggregator;
use asyncfl_core::asyncfilter::{
    AsyncFilter, AsyncFilterConfig, MiddlePolicy, MovingAverageMode, ScoreNormalization,
};
use asyncfl_data::DatasetProfile;
use asyncfl_sim::config::SimConfig;
use asyncfl_sim::runner::{build_attack, Simulation};
use asyncfl_telemetry::metrics::MetricsRegistry;
use asyncfl_telemetry::{SharedSink, Sink, Stopwatch};
use std::sync::Arc;

// Count allocations so --bench-json reports real alloc/RSS numbers.
#[global_allocator]
static ALLOC: asyncfl_telemetry::alloc::CountingAllocator =
    asyncfl_telemetry::alloc::CountingAllocator::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .map_or(1, |i| {
            let value = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--threads requires a value");
                std::process::exit(2);
            });
            value.parse().unwrap_or_else(|e| {
                eprintln!("invalid --threads '{value}': {e}");
                std::process::exit(2);
            })
        })
        .max(1);
    let bench_json_path = args.iter().position(|a| a == "--bench-json").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--bench-json requires a file path");
                std::process::exit(2);
            })
            .clone()
    });
    let trace = args.iter().position(|a| a == "--trace").map(|i| {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--trace requires a file path");
            std::process::exit(2);
        });
        TraceHandle::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create --trace file {path}: {e}");
            std::process::exit(1);
        })
    });
    // --bench-json without --trace still needs span histograms.
    let standalone_registry: Option<Arc<MetricsRegistry>> =
        if bench_json_path.is_some() && trace.is_none() {
            Some(Arc::new(MetricsRegistry::new()))
        } else {
            None
        };
    let run_sink = |trace: Option<&TraceHandle>| -> Option<SharedSink> {
        trace.map(TraceHandle::sink).or_else(|| {
            standalone_registry
                .as_ref()
                .map(|r| SharedSink::from_arc(Arc::clone(r) as Arc<dyn Sink>))
        })
    };
    let attacks = [AttackKind::None, AttackKind::Gd, AttackKind::MinSum];

    let variants: Vec<(&str, AsyncFilterConfig)> = vec![
        (
            "default (EMA 0.2, gate 2, defer-once, global)",
            AsyncFilterConfig::default(),
        ),
        (
            "ablation-ma: Robbins-Monro (eq. 5 literal)",
            AsyncFilterConfig {
                ma_mode: MovingAverageMode::RobbinsMonro,
                ..Default::default()
            },
        ),
        (
            "ablation-ma: EMA beta 0.5",
            AsyncFilterConfig {
                ma_mode: MovingAverageMode::Ema { beta: 0.5 },
                ..Default::default()
            },
        ),
        (
            "ablation-gate: off (always reject top cluster)",
            AsyncFilterConfig {
                min_separation: 0.0,
                ..Default::default()
            },
        ),
        (
            "ablation-gate: 3.0",
            AsyncFilterConfig {
                min_separation: 3.0,
                ..Default::default()
            },
        ),
        (
            "ablation-score: cross-group (eq. 7 literal)",
            AsyncFilterConfig {
                score_normalization: ScoreNormalization::CrossGroup,
                ..Default::default()
            },
        ),
        (
            "ablation-score: within-group",
            AsyncFilterConfig {
                score_normalization: ScoreNormalization::WithinGroup,
                ..Default::default()
            },
        ),
        (
            "ablation-middle: accept",
            AsyncFilterConfig {
                middle_policy: MiddlePolicy::Accept,
                ..Default::default()
            },
        ),
        (
            "ablation-middle: reject",
            AsyncFilterConfig {
                middle_policy: MiddlePolicy::Reject,
                ..Default::default()
            },
        ),
        (
            "ablation-bucket: staleness buckets of 4",
            AsyncFilterConfig {
                staleness_bucket: 4,
                ..Default::default()
            },
        ),
        (
            "ablation-kmeans: 2-means (fig. 7)",
            AsyncFilterConfig::two_means(),
        ),
    ];

    let mut table = Table::new(
        "AsyncFilter design ablations (FashionMNIST, paper-default setting)",
        attacks.iter().map(|a| a.label().to_string()).collect(),
    );
    let mut experiment_secs: Vec<(String, f64)> = Vec::new();
    for (label, config) in variants {
        let started = Stopwatch::start();
        let mut row = Vec::new();
        for &attack in &attacks {
            let mut sim_config = SimConfig::paper_default(DatasetProfile::FashionMnist);
            sim_config.threads = threads;
            if quick {
                sim_config.rounds = 16;
                sim_config.test_samples = 800;
            }
            let mut sim = Simulation::new(sim_config);
            let built = build_attack(attack, sim.config().num_clients, sim.config().num_malicious);
            let result = sim.run_with_sink(
                Box::new(AsyncFilter::new(config.clone())),
                built,
                Box::new(MeanAggregator::new()),
                run_sink(trace.as_ref()),
            );
            row.push(pct(result.final_accuracy));
        }
        experiment_secs.push((label.to_string(), started.elapsed_secs()));
        table.push_row(label, row);
        eprint!(".");
    }
    eprintln!();
    println!("{}", table.to_markdown());
    if let Some(handle) = &trace {
        print!("{}", handle.finish());
    }

    if let Some(path) = bench_json_path {
        let registry: Option<&MetricsRegistry> = trace
            .as_ref()
            .map(|h| h.registry())
            .or(standalone_registry.as_deref());
        let artifact = BenchJson {
            binary: "ablations",
            quick,
            threads,
            total_secs: experiment_secs.iter().map(|(_, s)| s).sum(),
            experiments: experiment_secs,
            phases: registry.map(phase_rows).unwrap_or_default(),
            counters: registry.map(counter_rows).unwrap_or_default(),
            gauges: registry.map(gauge_rows).unwrap_or_default(),
            scaling: None,
            training: None,
            filter_wide: None,
            event_schedule: None,
            scale_1m: None,
            rss: Some(run_rss_probe()),
        };
        if let Err(e) = artifact.write(&path) {
            eprintln!("failed to write --bench-json {path}: {e}");
            std::process::exit(1);
        }
        println!("bench json written to {path}");
    }
}
