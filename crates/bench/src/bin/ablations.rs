//! `ablations` — measure the design choices `DESIGN.md` calls out.
//!
//! Each ablation varies exactly one `AsyncFilterConfig` knob against the
//! default configuration, on FashionMNIST under the no-attack / GD / Min-Sum
//! columns (the three regimes where the knobs trade off):
//!
//! ```text
//! cargo run --release -p asyncfl-bench --bin ablations [-- --quick] [--trace FILE]
//! ```

use asyncfl_analysis::report::{pct, Table};
use asyncfl_attacks::AttackKind;
use asyncfl_bench::TraceHandle;
use asyncfl_core::aggregation::MeanAggregator;
use asyncfl_core::asyncfilter::{
    AsyncFilter, AsyncFilterConfig, MiddlePolicy, MovingAverageMode, ScoreNormalization,
};
use asyncfl_data::DatasetProfile;
use asyncfl_sim::config::SimConfig;
use asyncfl_sim::runner::{build_attack, Simulation};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace = args.iter().position(|a| a == "--trace").map(|i| {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--trace requires a file path");
            std::process::exit(2);
        });
        TraceHandle::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create --trace file {path}: {e}");
            std::process::exit(1);
        })
    });
    let attacks = [AttackKind::None, AttackKind::Gd, AttackKind::MinSum];

    let variants: Vec<(&str, AsyncFilterConfig)> = vec![
        (
            "default (EMA 0.2, gate 2, defer-once, global)",
            AsyncFilterConfig::default(),
        ),
        (
            "ablation-ma: Robbins-Monro (eq. 5 literal)",
            AsyncFilterConfig {
                ma_mode: MovingAverageMode::RobbinsMonro,
                ..Default::default()
            },
        ),
        (
            "ablation-ma: EMA beta 0.5",
            AsyncFilterConfig {
                ma_mode: MovingAverageMode::Ema { beta: 0.5 },
                ..Default::default()
            },
        ),
        (
            "ablation-gate: off (always reject top cluster)",
            AsyncFilterConfig {
                min_separation: 0.0,
                ..Default::default()
            },
        ),
        (
            "ablation-gate: 3.0",
            AsyncFilterConfig {
                min_separation: 3.0,
                ..Default::default()
            },
        ),
        (
            "ablation-score: cross-group (eq. 7 literal)",
            AsyncFilterConfig {
                score_normalization: ScoreNormalization::CrossGroup,
                ..Default::default()
            },
        ),
        (
            "ablation-score: within-group",
            AsyncFilterConfig {
                score_normalization: ScoreNormalization::WithinGroup,
                ..Default::default()
            },
        ),
        (
            "ablation-middle: accept",
            AsyncFilterConfig {
                middle_policy: MiddlePolicy::Accept,
                ..Default::default()
            },
        ),
        (
            "ablation-middle: reject",
            AsyncFilterConfig {
                middle_policy: MiddlePolicy::Reject,
                ..Default::default()
            },
        ),
        (
            "ablation-bucket: staleness buckets of 4",
            AsyncFilterConfig {
                staleness_bucket: 4,
                ..Default::default()
            },
        ),
        (
            "ablation-kmeans: 2-means (fig. 7)",
            AsyncFilterConfig::two_means(),
        ),
    ];

    let mut table = Table::new(
        "AsyncFilter design ablations (FashionMNIST, paper-default setting)",
        attacks.iter().map(|a| a.label().to_string()).collect(),
    );
    for (label, config) in variants {
        let mut row = Vec::new();
        for &attack in &attacks {
            let mut sim_config = SimConfig::paper_default(DatasetProfile::FashionMnist);
            if quick {
                sim_config.rounds = 16;
                sim_config.test_samples = 800;
            }
            let mut sim = Simulation::new(sim_config);
            let built = build_attack(attack, sim.config().num_clients, sim.config().num_malicious);
            let result = sim.run_with_sink(
                Box::new(AsyncFilter::new(config.clone())),
                built,
                Box::new(MeanAggregator::new()),
                trace.as_ref().map(TraceHandle::sink),
            );
            row.push(pct(result.final_accuracy));
        }
        table.push_row(label, row);
        eprint!(".");
    }
    eprintln!();
    println!("{}", table.to_markdown());
    if let Some(handle) = &trace {
        print!("{}", handle.finish());
    }
}
