//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§5) and hosts the Criterion micro-benchmarks.
//!
//! The [`experiments`] module defines one entry per paper artifact
//! (Tables 2–10, Figs. 3–4, 6–7) — each pins the exact workload (dataset
//! profile, Dirichlet α, attacker count, Zipf exponent, staleness limit),
//! runs the defenses × attacks grid on the deterministic simulator, and
//! prints the measured table next to the paper's reported numbers.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p asyncfl-bench --bin repro -- all
//! ```
//!
//! or a single artifact: `… -- table5`, `… -- fig7 --quick`, etc.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod perf;
pub mod trace;

pub use experiments::{ExperimentId, RunOptions};
pub use trace::TraceHandle;
