//! One entry per paper artifact: workloads, paper-reported numbers, and the
//! grid runs that regenerate them.
//!
//! Absolute numbers are not expected to match the paper (the substrate is a
//! calibrated synthetic simulator, not the authors' GPU testbed); the
//! *shape* — which defense wins per attack, approximate gaps, divergences —
//! is the reproduction target. `EXPERIMENTS.md` records paper-vs-measured
//! for each entry.

use asyncfl_analysis::experiment::{DefenseKind, ExperimentGrid, RecordingFilter};
use asyncfl_analysis::pca;
use asyncfl_analysis::report::{accuracy_table, pct, Table};
use asyncfl_analysis::tsne::{self, TsneConfig};
use asyncfl_attacks::AttackKind;
use asyncfl_data::partition::Partitioner;
use asyncfl_data::DatasetProfile;
use asyncfl_sim::config::SimConfig;
use asyncfl_sim::runner::Simulation;
use asyncfl_telemetry::SharedSink;
use asyncfl_tensor::Vector;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::str::FromStr;

/// Options shared by all experiment runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Shorter horizon / smaller test set — for CI smoke runs. Full runs
    /// reproduce the paper's setting.
    pub quick: bool,
    /// Seeds to average over (tables use the first; Fig. 6 uses all).
    pub seeds: Vec<u64>,
    /// Worker threads for the grid runner.
    pub threads: usize,
    /// Telemetry sink every simulation reports into (`--trace`); `None`
    /// (the default) runs untraced at zero cost.
    pub sink: Option<SharedSink>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            quick: false,
            seeds: vec![42, 43, 44],
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            sink: None,
        }
    }
}

/// A structured experiment report: tables plus free-form notes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Tables, in presentation order (measured first, then paper-reported).
    pub tables: Vec<Table>,
    /// Trailing notes (shape commentary, embedding samples, …).
    pub notes: String,
}

impl Report {
    /// Renders the report as markdown (tables then notes).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            let _ = writeln!(out, "{}", t.to_markdown());
        }
        out.push_str(&self.notes);
        out
    }
}

/// Identifier of a paper artifact to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table 2: main defense comparison, MNIST.
    Table2,
    /// Table 3: main defense comparison, FashionMNIST.
    Table3,
    /// Table 4: main defense comparison, CIFAR-10.
    Table4,
    /// Table 5: main defense comparison, CINIC-10.
    Table5,
    /// Table 6: data heterogeneity, CINIC-10, Dirichlet α = 0.05.
    Table6,
    /// Table 7: data heterogeneity, FashionMNIST, Dirichlet α = 0.01.
    Table7,
    /// Table 8: doubled attackers (40/100), CINIC-10.
    Table8,
    /// Table 9: doubled attackers (40/100), FashionMNIST.
    Table9,
    /// Table 10: speed heterogeneity, FashionMNIST, Zipf s = 2.5.
    Table10,
    /// Fig. 3: t-SNE of local updates, IID.
    Fig3,
    /// Fig. 4: t-SNE of local updates, non-IID (Dirichlet 0.01).
    Fig4,
    /// Fig. 6: staleness-limit sweep (5/10/15/20) under GD and LIE.
    Fig6,
    /// Fig. 7: AsyncFilter-3means vs AsyncFilter-2means ablation.
    Fig7,
}

impl ExperimentId {
    /// Every artifact, in paper order.
    pub const ALL: [ExperimentId; 13] = [
        ExperimentId::Fig3,
        ExperimentId::Fig4,
        ExperimentId::Table2,
        ExperimentId::Table3,
        ExperimentId::Table4,
        ExperimentId::Table5,
        ExperimentId::Table6,
        ExperimentId::Table7,
        ExperimentId::Table8,
        ExperimentId::Table9,
        ExperimentId::Table10,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
    ];

    /// The command-line name (`table2`, `fig6`, …).
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentId::Table2 => "table2",
            ExperimentId::Table3 => "table3",
            ExperimentId::Table4 => "table4",
            ExperimentId::Table5 => "table5",
            ExperimentId::Table6 => "table6",
            ExperimentId::Table7 => "table7",
            ExperimentId::Table8 => "table8",
            ExperimentId::Table9 => "table9",
            ExperimentId::Table10 => "table10",
            ExperimentId::Fig3 => "fig3",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
        }
    }

    /// One-line description shown by `repro list`.
    pub fn description(&self) -> &'static str {
        match self {
            ExperimentId::Table2 => "Defense comparison on MNIST (paper Table 2)",
            ExperimentId::Table3 => "Defense comparison on FashionMNIST (paper Table 3)",
            ExperimentId::Table4 => "Defense comparison on CIFAR-10 (paper Table 4)",
            ExperimentId::Table5 => "Defense comparison on CINIC-10 (paper Table 5)",
            ExperimentId::Table6 => "Data heterogeneity α=0.05 on CINIC-10 (paper Table 6)",
            ExperimentId::Table7 => "Data heterogeneity α=0.01 on FashionMNIST (paper Table 7)",
            ExperimentId::Table8 => "Doubled attackers on CINIC-10 (paper Table 8)",
            ExperimentId::Table9 => "Doubled attackers on FashionMNIST (paper Table 9)",
            ExperimentId::Table10 => {
                "Speed heterogeneity Zipf s=2.5 on FashionMNIST (paper Table 10)"
            }
            ExperimentId::Fig3 => "t-SNE of local updates, IID (paper Fig. 3)",
            ExperimentId::Fig4 => "t-SNE of local updates, non-IID (paper Fig. 4)",
            ExperimentId::Fig6 => "Staleness-limit sweep under GD/LIE (paper Fig. 6)",
            ExperimentId::Fig7 => "3-means vs 2-means ablation (paper Fig. 7)",
        }
    }

    /// Runs the experiment and renders a human-readable report.
    pub fn run(&self, opts: &RunOptions) -> String {
        self.run_report(opts).to_markdown()
    }

    /// Runs the experiment and returns the structured report (tables are
    /// exportable as CSV via [`Table::to_csv`]).
    pub fn run_report(&self, opts: &RunOptions) -> Report {
        match self {
            ExperimentId::Table2 => run_main_table(*self, DatasetProfile::Mnist, opts),
            ExperimentId::Table3 => run_main_table(*self, DatasetProfile::FashionMnist, opts),
            ExperimentId::Table4 => run_main_table(*self, DatasetProfile::Cifar10, opts),
            ExperimentId::Table5 => run_main_table(*self, DatasetProfile::Cinic10, opts),
            ExperimentId::Table6 => run_variant_table(*self, opts),
            ExperimentId::Table7 => run_variant_table(*self, opts),
            ExperimentId::Table8 => run_variant_table(*self, opts),
            ExperimentId::Table9 => run_variant_table(*self, opts),
            ExperimentId::Table10 => run_variant_table(*self, opts),
            ExperimentId::Fig3 => run_tsne_figure(*self, opts),
            ExperimentId::Fig4 => run_tsne_figure(*self, opts),
            ExperimentId::Fig6 => run_staleness_sweep(opts),
            ExperimentId::Fig7 => run_kmeans_ablation(opts),
        }
    }

    /// The paper's reported accuracies for this table, if it is a table:
    /// rows in [`DefenseKind::TABLE_ORDER`] order, columns in the attack
    /// order the table uses.
    pub fn paper_values(&self) -> Option<&'static [[f64; 5]]> {
        // Tables 6–10 have 4 columns; the 5th slot is NaN-free filler (-1).
        const T2: [[f64; 5]; 3] = [
            [86.6, 96.9, 89.0, 97.4, 97.0],
            [82.9, 93.6, 84.9, 95.7, 95.1],
            [93.0, 95.6, 93.9, 97.3, 97.2],
        ];
        const T3: [[f64; 5]; 3] = [
            [72.2, 86.2, 77.4, 65.9, 86.5],
            [69.1, 82.2, 71.1, 83.8, 82.5],
            [79.1, 83.1, 81.0, 86.1, 85.3],
        ];
        const T4: [[f64; 5]; 3] = [
            [70.3, 52.0, 84.7, 85.2, 83.9],
            [75.3, 48.5, 79.4, 85.6, 81.2],
            [76.2, 60.2, 83.8, 85.6, 84.8],
        ];
        const T5: [[f64; 5]; 3] = [
            [10.0, 26.3, 17.3, 51.3, 56.0],
            [46.3, 10.3, 42.0, 50.5, 53.4],
            [49.2, 53.2, 56.8, 52.3, 53.4],
        ];
        const T6: [[f64; 5]; 3] = [
            [30.7, 10.4, 44.2, 43.1, -1.0],
            [46.3, 14.3, 40.3, 46.3, -1.0],
            [41.0, 49.3, 47.2, 48.8, -1.0],
        ];
        const T7: [[f64; 5]; 3] = [
            [10.0, 63.4, 31.8, 73.7, -1.0],
            [24.2, 47.9, 37.8, 65.8, -1.0],
            [30.7, 60.4, 41.6, 69.0, -1.0],
        ];
        const T8: [[f64; 5]; 3] = [
            [10.0, 10.0, 10.0, 51.7, -1.0],
            [29.2, 10.3, 50.3, 50.0, -1.0],
            [38.1, 34.5, 46.9, 46.9, -1.0],
        ];
        const T9: [[f64; 5]; 3] = [
            [10.0, 85.3, 72.7, 73.1, -1.0],
            [19.9, 81.3, 69.1, 82.7, -1.0],
            [31.3, 83.1, 78.9, 85.0, -1.0],
        ];
        const T10: [[f64; 5]; 3] = [
            [83.7, 85.5, 80.9, 84.5, -1.0],
            [80.1, 83.9, 69.0, 81.7, -1.0],
            [83.8, 85.5, 83.1, 85.1, -1.0],
        ];
        match self {
            ExperimentId::Table2 => Some(&T2),
            ExperimentId::Table3 => Some(&T3),
            ExperimentId::Table4 => Some(&T4),
            ExperimentId::Table5 => Some(&T5),
            ExperimentId::Table6 => Some(&T6),
            ExperimentId::Table7 => Some(&T7),
            ExperimentId::Table8 => Some(&T8),
            ExperimentId::Table9 => Some(&T9),
            ExperimentId::Table10 => Some(&T10),
            _ => None,
        }
    }

    /// The simulation configuration this artifact pins (tables and Fig. 7;
    /// figures 3/4/6 derive their own variations).
    pub fn base_config(&self, opts: &RunOptions) -> SimConfig {
        let mut cfg = match self {
            ExperimentId::Table2 => SimConfig::paper_default(DatasetProfile::Mnist),
            ExperimentId::Table3 => SimConfig::paper_default(DatasetProfile::FashionMnist),
            ExperimentId::Table4 => SimConfig::paper_default(DatasetProfile::Cifar10),
            ExperimentId::Table5 => SimConfig::paper_default(DatasetProfile::Cinic10),
            ExperimentId::Table6 => {
                let mut c = SimConfig::paper_default(DatasetProfile::Cinic10);
                c.partitioner = Partitioner::dirichlet(0.05);
                c
            }
            ExperimentId::Table7 => {
                let mut c = SimConfig::paper_default(DatasetProfile::FashionMnist);
                c.partitioner = Partitioner::dirichlet(0.01);
                c
            }
            ExperimentId::Table8 => {
                let mut c = SimConfig::paper_default(DatasetProfile::Cinic10);
                c.num_malicious = 40;
                c
            }
            ExperimentId::Table9 => {
                let mut c = SimConfig::paper_default(DatasetProfile::FashionMnist);
                c.num_malicious = 40;
                c
            }
            ExperimentId::Table10 => {
                let mut c = SimConfig::paper_default(DatasetProfile::FashionMnist);
                c.zipf_s = 2.5;
                c
            }
            ExperimentId::Fig6 | ExperimentId::Fig7 => {
                SimConfig::paper_default(DatasetProfile::FashionMnist)
            }
            ExperimentId::Fig3 | ExperimentId::Fig4 => {
                let mut c = SimConfig::paper_default(DatasetProfile::Mnist);
                c.num_malicious = 0;
                c.rounds = 10;
                if *self == ExperimentId::Fig3 {
                    c.partitioner = Partitioner::iid();
                } else {
                    c.partitioner = Partitioner::dirichlet(0.01);
                }
                c
            }
        };
        if opts.quick {
            cfg.rounds = cfg.rounds.min(16);
            cfg.test_samples = cfg.test_samples.min(800);
        }
        cfg
    }
}

impl FromStr for ExperimentId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExperimentId::ALL
            .into_iter()
            .find(|id| id.name() == s.to_lowercase())
            .ok_or_else(|| {
                format!(
                    "unknown experiment '{s}' (expected one of: {})",
                    ExperimentId::ALL
                        .iter()
                        .map(|id| id.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
    }
}

impl std::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Renders a paper-reported reference table next to a measured one.
fn paper_reference_table(id: ExperimentId, attacks: &[AttackKind]) -> Option<Table> {
    let values = id.paper_values()?;
    let mut table = Table::new(
        format!("Paper-reported ({id})"),
        attacks.iter().map(|a| a.label().to_string()).collect(),
    );
    for (row, defense) in DefenseKind::TABLE_ORDER.iter().enumerate() {
        let cells = (0..attacks.len())
            .map(|c| format!("{:.1}%", values[row][c]))
            .collect();
        table.push_row(defense.label(), cells);
    }
    Some(table)
}

/// Tables 2–5: the three defenses × five columns (four attacks + no attack).
fn run_main_table(id: ExperimentId, profile: DatasetProfile, opts: &RunOptions) -> Report {
    let attacks = AttackKind::TABLE_ORDER.to_vec();
    run_grid_report(id, profile.name(), id.base_config(opts), attacks, opts)
}

/// Tables 6–10: the three defenses × the four attacks only.
fn run_variant_table(id: ExperimentId, opts: &RunOptions) -> Report {
    let attacks = AttackKind::ATTACKS_ONLY.to_vec();
    let cfg = id.base_config(opts);
    let title = cfg.profile.name();
    run_grid_report(id, title, cfg, attacks, opts)
}

fn run_grid_report(
    id: ExperimentId,
    dataset: &str,
    config: SimConfig,
    attacks: Vec<AttackKind>,
    opts: &RunOptions,
) -> Report {
    let seed = opts.seeds.first().copied().unwrap_or(42);
    let grid = ExperimentGrid::table(config, attacks.clone()).with_seeds(vec![seed]);
    let cells = grid.run_parallel_with_sink(opts.threads, opts.sink.clone());
    let measured = accuracy_table(
        format!("Measured ({id}, {dataset})"),
        &cells,
        &DefenseKind::TABLE_ORDER,
        &attacks,
        false,
    );
    let mut tables = vec![measured];
    if let Some(reference) = paper_reference_table(id, &attacks) {
        tables.push(reference);
    }
    Report {
        tables,
        notes: String::new(),
    }
}

/// Fig. 6: AsyncFilter accuracy across staleness limits {5, 10, 15, 20}
/// under the GD and LIE attacks, mean ± std over seeds.
fn run_staleness_sweep(opts: &RunOptions) -> Report {
    let limits = [5u64, 10, 15, 20];
    let attacks = [AttackKind::Gd, AttackKind::Lie];
    let seeds: &[u64] = if opts.quick {
        &opts.seeds[..1]
    } else {
        &opts.seeds
    };
    let mut table = Table::new(
        "Measured (fig6, FashionMNIST): AsyncFilter accuracy vs staleness limit",
        limits.iter().map(|l| format!("limit {l}")).collect(),
    );
    for attack in attacks {
        let mut row = Vec::new();
        for &limit in &limits {
            let mut cfg = ExperimentId::Fig6.base_config(opts);
            cfg.staleness_limit = limit;
            let grid = ExperimentGrid {
                config: cfg,
                defenses: vec![DefenseKind::AsyncFilter],
                attacks: vec![attack],
                seeds: seeds.to_vec(),
            };
            let cells = grid.run_parallel_with_sink(opts.threads, opts.sink.clone());
            let mean =
                ExperimentGrid::mean_accuracy(&cells, DefenseKind::AsyncFilter, attack).unwrap();
            let std =
                ExperimentGrid::std_accuracy(&cells, DefenseKind::AsyncFilter, attack).unwrap();
            row.push(format!("{} ±{:.1}", pct(mean), std * 100.0));
        }
        table.push_row(attack.label(), row);
    }
    Report {
        tables: vec![table],
        notes: "\nPaper shape: accuracy decreases slowly as the staleness limit grows; \
                AsyncFilter stays above ~84% (GD) and ~80% (LIE) across limits 5–20.\n"
            .to_string(),
    }
}

/// Fig. 7: AsyncFilter-3means vs AsyncFilter-2means across the four attacks
/// (Dirichlet α = 0.1). Both variants run the *paper-literal* rule (no
/// separation gate) so the comparison isolates what the figure is about:
/// with only 2 clusters there is no tolerated middle tier, so the variant
/// over-rejects non-IID benign updates.
fn run_kmeans_ablation(opts: &RunOptions) -> Report {
    let attacks = AttackKind::ATTACKS_ONLY.to_vec();
    let seed = opts.seeds.first().copied().unwrap_or(42);
    let defenses = [
        DefenseKind::AsyncFilter3MeansLiteral,
        DefenseKind::AsyncFilter2MeansLiteral,
    ];
    let grid = ExperimentGrid {
        config: ExperimentId::Fig7.base_config(opts),
        defenses: defenses.to_vec(),
        attacks: attacks.clone(),
        seeds: vec![seed],
    };
    let cells = grid.run_parallel_with_sink(opts.threads, opts.sink.clone());
    let table = accuracy_table(
        "Measured (fig7, FashionMNIST): 3-means vs 2-means (paper-literal rule)",
        &cells,
        &defenses,
        &attacks,
        false,
    );
    Report {
        tables: vec![table],
        notes: "\nPaper shape: AsyncFilter-3means outperforms AsyncFilter-2means because \
                2-means excessively rejects non-IID benign updates. Measured: the gap \
                shows clearly on the subtle attacks (Min-Max, Min-Sum), where the \
                2-means variant lumps the non-IID middle tier in with the attackers.\n"
            .to_string(),
    }
}

/// Figs. 3–4: record one aggregation's worth of local updates, embed them
/// with PCA + t-SNE, and report the staleness-cluster structure the paper's
/// observation rests on.
fn run_tsne_figure(id: ExperimentId, opts: &RunOptions) -> Report {
    let cfg = id.base_config(opts);
    let recorder = RecordingFilter::new();
    let log = recorder.log_handle();
    let mut sim = Simulation::new(cfg);
    let attack = asyncfl_sim::runner::build_attack(
        AttackKind::None,
        sim.config().num_clients,
        sim.config().num_malicious,
    );
    let _ = sim.run_with_sink(
        Box::new(recorder),
        attack,
        Box::new(asyncfl_core::aggregation::MeanAggregator::new()),
        opts.sink.clone(),
    );
    let records = log
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    // Use the last recorded aggregation (a mature round, like the paper's
    // mid-training snapshots).
    let last_round = records.iter().map(|r| r.round).max().unwrap_or(0);
    let snapshot: Vec<_> = records.iter().filter(|r| r.round == last_round).collect();
    let points: Vec<Vector> = snapshot.iter().map(|r| r.params.clone()).collect();
    let staleness: Vec<u64> = snapshot.iter().map(|r| r.staleness).collect();

    // PCA to 10 dimensions, then exact t-SNE to 2.
    let comps = 10
        .min(points[0].len())
        .min(points.len().saturating_sub(1))
        .max(1);
    let reduced_m = pca::project(&points, comps, 0xF16);
    let reduced: Vec<Vector> = (0..reduced_m.rows())
        .map(|r| Vector::from(reduced_m.row(r)))
        .collect();
    let embedding = tsne::embed(
        &reduced,
        &TsneConfig {
            perplexity: 10.0,
            iterations: if opts.quick { 150 } else { 400 },
            ..TsneConfig::default()
        },
    );

    // Cluster structure: per-staleness-group centroid spread in the
    // embedding vs. overall spread.
    let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, &tau) in staleness.iter().enumerate() {
        groups.entry(tau).or_default().push(i);
    }
    let centroid = |idx: &[usize]| -> (f64, f64) {
        let n = idx.len() as f64;
        (
            idx.iter().map(|&i| embedding[i].0).sum::<f64>() / n,
            idx.iter().map(|&i| embedding[i].1).sum::<f64>() / n,
        )
    };
    let spread = |idx: &[usize], c: (f64, f64)| -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        idx.iter()
            .map(|&i| {
                let dx = embedding[i].0 - c.0;
                let dy = embedding[i].1 - c.1;
                (dx * dx + dy * dy).sqrt()
            })
            .sum::<f64>()
            / idx.len() as f64
    };
    let all_idx: Vec<usize> = (0..embedding.len()).collect();
    let global_centroid = centroid(&all_idx);
    let global_spread = spread(&all_idx, global_centroid);

    let mut table = Table::new(
        format!(
            "Measured ({id}): staleness-group structure of {} updates at round {last_round}",
            embedding.len()
        ),
        vec![
            "updates".into(),
            "intra-group spread".into(),
            "centroid dist from global".into(),
        ],
    );
    let mut mean_intra = 0.0;
    let mut weight = 0.0;
    for (&tau, idx) in &groups {
        let c = centroid(idx);
        let s = spread(idx, c);
        let dx = c.0 - global_centroid.0;
        let dy = c.1 - global_centroid.1;
        table.push_row(
            format!("τ = {tau}"),
            vec![
                idx.len().to_string(),
                format!("{s:.2}"),
                format!("{:.2}", (dx * dx + dy * dy).sqrt()),
            ],
        );
        if idx.len() > 1 {
            mean_intra += s * idx.len() as f64;
            weight += idx.len() as f64;
        }
    }
    let mean_intra = if weight > 0.0 {
        mean_intra / weight
    } else {
        0.0
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nGlobal embedding spread: {global_spread:.2}; weighted intra-group spread: {mean_intra:.2} \
         (ratio {:.2} — same-staleness updates cluster around common centers, \
         the paper's Figs. 3–4 observation).",
        mean_intra / global_spread.max(1e-9)
    );
    let _ = writeln!(
        out,
        "\nEmbedding sample (x, y, staleness) — first 16 points:\n"
    );
    for (i, &(x, y)) in embedding.iter().take(16).enumerate() {
        let _ = writeln!(out, "  {x:8.3}, {y:8.3}, τ={}", staleness[i]);
    }
    // Full embedding as a second table so `--csv` exports plottable data.
    let mut embedding_table = Table::new(
        format!("Embedding ({id})"),
        vec!["x".into(), "y".into(), "staleness".into()],
    );
    for (i, &(x, y)) in embedding.iter().enumerate() {
        embedding_table.push_row(
            snapshot[i].client.to_string(),
            vec![
                format!("{x:.4}"),
                format!("{y:.4}"),
                staleness[i].to_string(),
            ],
        );
    }
    Report {
        tables: vec![table, embedding_table],
        notes: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> RunOptions {
        RunOptions {
            quick: true,
            seeds: vec![1],
            threads: 4,
            sink: None,
        }
    }

    #[test]
    fn names_roundtrip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::from_str(id.name()).unwrap(), id);
            assert!(!id.description().is_empty());
            assert_eq!(format!("{id}"), id.name());
        }
        assert!(ExperimentId::from_str("table99").is_err());
    }

    #[test]
    fn paper_values_present_for_tables_only() {
        for id in ExperimentId::ALL {
            let is_table = id.name().starts_with("table");
            assert_eq!(id.paper_values().is_some(), is_table, "{id}");
        }
    }

    #[test]
    fn base_configs_match_paper_variations() {
        let opts = RunOptions::default();
        assert_eq!(
            ExperimentId::Table6.base_config(&opts).partitioner,
            Partitioner::dirichlet(0.05)
        );
        assert_eq!(
            ExperimentId::Table7.base_config(&opts).partitioner,
            Partitioner::dirichlet(0.01)
        );
        assert_eq!(ExperimentId::Table8.base_config(&opts).num_malicious, 40);
        assert_eq!(ExperimentId::Table9.base_config(&opts).num_malicious, 40);
        assert_eq!(ExperimentId::Table10.base_config(&opts).zipf_s, 2.5);
        assert!(ExperimentId::Fig3.base_config(&opts).partitioner.is_iid());
        assert!(!ExperimentId::Fig4.base_config(&opts).partitioner.is_iid());
        for id in ExperimentId::ALL {
            id.base_config(&opts).validate().unwrap();
        }
    }

    #[test]
    fn quick_mode_shrinks_configs() {
        let opts = quick_opts();
        let cfg = ExperimentId::Table2.base_config(&opts);
        assert!(cfg.rounds <= 16);
        assert!(cfg.test_samples <= 800);
    }
}
