//! First-party micro-benchmark harness.
//!
//! Presents the subset of the `criterion` API the workspace's benches use —
//! `Criterion::bench_function`, benchmark groups with
//! `bench_with_input`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — timing closures with a doubling-iteration
//! loop and printing ns/iter. Good enough for the relative comparisons the
//! bench suite makes; not a statistically rigorous estimator.
//!
//! Consumers import this crate under the name `criterion` (a Cargo
//! dependency rename), so bench code reads identically to upstream usage
//! while the build stays hermetic (no registry access; see DESIGN.md).
//!
//! Wall-clock use is confined to the bench harness by design: this crate is
//! only ever a dev-dependency of `crates/bench`, never part of the runtime
//! graph the determinism pins cover.

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new<P: std::fmt::Display, Q: std::fmt::Display>(function: P, parameter: Q) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `f` with a doubling iteration count until the measurement
    /// window is at least 50 ms (or 2²⁰ iterations), then records ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup.
        for _ in 0..3 {
            black_box(f());
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed.as_millis() >= 50 || iters >= 1 << 20 {
                self.nanos_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 2;
        }
    }
}

/// Top-level harness handle passed to every bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        println!("bench {name}: {:.1} ns/iter", b.nanos_per_iter);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b, input);
        println!("bench {}/{id}: {:.1} ns/iter", self.name, b.nanos_per_iter);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        println!("bench {}/{id}: {:.1} ns/iter", self.name, b.nanos_per_iter);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert!(b.nanos_per_iter > 0.0);
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        let id = BenchmarkId::new("filter", 128);
        assert_eq!(id.to_string(), "filter/128");
    }
}
