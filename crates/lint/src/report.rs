//! Human and machine-readable rendering of lint results.
//!
//! The JSON schema is stable and versioned (`asyncfl-lint-v2`): CI archives
//! the report next to the bench-diff table, and
//! `crates/bench/tests/lint_report_roundtrip.rs` round-trips it through
//! `asyncfl-bench`'s own JSON parser, so snippet lines containing quotes
//! and backslashes (i.e. most Rust source) are covered by test, not hope.

use crate::engine::Diagnostic;

/// Schema identifier embedded in the JSON report.
pub const JSON_SCHEMA: &str = "asyncfl-lint-v2";

/// Aggregated results across every linted file.
#[derive(Debug, Default)]
pub struct RunSummary {
    /// Files scanned.
    pub files_scanned: usize,
    /// Files where the AST parser fell back to the token scan.
    pub parse_fallbacks: usize,
    /// Hard violations across all files.
    pub violations: Vec<Diagnostic>,
    /// Non-fatal warnings (parser fallbacks).
    pub warnings: Vec<Diagnostic>,
    /// `lint:allow` directives that suppressed something.
    pub allows_used: usize,
    /// All well-formed `lint:allow` directives.
    pub allows_total: usize,
}

impl RunSummary {
    /// Whether the run passed (no hard violations).
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Plain-text report: one header line per finding, the offending source
    /// line with a caret marker underneath, plus a trailing summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.violations {
            render_human_diag(&mut out, d, "");
        }
        for d in &self.warnings {
            render_human_diag(&mut out, d, "warning: ");
        }
        out.push_str(&format!(
            "asyncfl-lint: {} violation(s), {} warning(s), {} file(s) scanned \
             ({} parser fallback(s)), {}/{} lint:allow directive(s) in use\n",
            self.violations.len(),
            self.warnings.len(),
            self.files_scanned,
            self.parse_fallbacks,
            self.allows_used,
            self.allows_total,
        ));
        out
    }

    /// JSON report (hand-rolled; this crate is dependency-free). Stable key
    /// order so CI artifacts diff cleanly across PRs.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_string(JSON_SCHEMA)));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"parse_fallbacks\": {},\n",
            self.parse_fallbacks
        ));
        out.push_str(&format!("  \"allows_used\": {},\n", self.allows_used));
        out.push_str(&format!("  \"allows_total\": {},\n", self.allows_total));
        out.push_str(&format!(
            "  \"violations\": {},\n",
            render_diagnostics(&self.violations)
        ));
        out.push_str(&format!(
            "  \"warnings\": {}\n",
            render_diagnostics(&self.warnings)
        ));
        out.push_str("}\n");
        out
    }
}

fn render_human_diag(out: &mut String, d: &Diagnostic, prefix: &str) {
    if d.col > 0 {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}{}\n",
            d.path, d.line, d.col, d.rule, prefix, d.message
        ));
    } else {
        out.push_str(&format!(
            "{}:{}: [{}] {}{}\n",
            d.path, d.line, d.rule, prefix, d.message
        ));
    }
    if let Some(snippet) = &d.snippet {
        out.push_str(&format!("    | {snippet}\n"));
        if let (Some((start, end)), true) = (d.span, d.col > 0) {
            let width = (end.saturating_sub(start)).max(1) as usize;
            out.push_str(&format!(
                "    | {}{}\n",
                " ".repeat(d.col.saturating_sub(1) as usize),
                "^".repeat(width)
            ));
        }
    }
}

fn render_diagnostics(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "[]".to_string();
    }
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            let mut fields = vec![
                format!("\"rule\": {}", json_string(&d.rule)),
                format!("\"path\": {}", json_string(&d.path)),
                format!("\"line\": {}", d.line),
                format!("\"col\": {}", d.col),
            ];
            if let Some((start, end)) = d.span {
                fields.push(format!("\"span\": [{start}, {end}]"));
            }
            if let Some(snippet) = &d.snippet {
                fields.push(format!("\"snippet\": {}", json_string(snippet)));
            }
            fields.push(format!("\"message\": {}", json_string(&d.message)));
            format!("    {{{}}}", fields.join(", "))
        })
        .collect();
    format!("[\n{}\n  ]", items.join(",\n"))
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line,
            col: 5,
            span: Some((100, 106)),
            snippet: Some("    x.unwrap(); // \"quoted\" \\ backslash".to_string()),
            message: "a \"quoted\" message".to_string(),
        }
    }

    #[test]
    fn human_report_mentions_everything() {
        let summary = RunSummary {
            files_scanned: 3,
            parse_fallbacks: 0,
            violations: vec![diag("D1", 7)],
            warnings: vec![],
            allows_used: 1,
            allows_total: 2,
        };
        let text = summary.render_human();
        assert!(text.contains("crates/x/src/lib.rs:7:5: [D1]"));
        assert!(text.contains("| "), "snippet line rendered");
        assert!(text.contains("^"), "caret marker rendered");
        assert!(text.contains("1 violation(s)"));
        assert!(!summary.clean());
    }

    #[test]
    fn json_escapes_quotes_and_parses_shapewise() {
        let summary = RunSummary {
            files_scanned: 1,
            parse_fallbacks: 1,
            violations: vec![diag("F1", 2)],
            warnings: vec![],
            allows_used: 0,
            allows_total: 0,
        };
        let json = summary.render_json();
        assert!(json.contains("\"schema\": \"asyncfl-lint-v2\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\\\ backslash"), "backslash escaped");
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"parse_fallbacks\": 1"));
        assert!(json.contains("\"rule\": \"F1\""));
        assert!(json.contains("\"span\": [100, 106]"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
