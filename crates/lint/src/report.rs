//! Human and machine-readable rendering of lint results.

use crate::engine::Diagnostic;

/// Aggregated results across every linted file.
#[derive(Debug, Default)]
pub struct RunSummary {
    /// Files scanned.
    pub files_scanned: usize,
    /// Hard violations across all files.
    pub violations: Vec<Diagnostic>,
    /// Non-fatal warnings (unused allows).
    pub warnings: Vec<Diagnostic>,
    /// `lint:allow` directives that suppressed something.
    pub allows_used: usize,
    /// All well-formed `lint:allow` directives.
    pub allows_total: usize,
}

impl RunSummary {
    /// Whether the run passed (no hard violations).
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Plain-text report, one line per finding plus a trailing summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                d.path, d.line, d.rule, d.message
            ));
        }
        for d in &self.warnings {
            out.push_str(&format!(
                "{}:{}: [{}] warning: {}\n",
                d.path, d.line, d.rule, d.message
            ));
        }
        out.push_str(&format!(
            "asyncfl-lint: {} violation(s), {} warning(s), {} file(s) scanned, \
             {}/{} lint:allow directive(s) in use\n",
            self.violations.len(),
            self.warnings.len(),
            self.files_scanned,
            self.allows_used,
            self.allows_total,
        ));
        out
    }

    /// JSON report (hand-rolled; this crate is dependency-free). Stable key
    /// order so CI artifacts diff cleanly across PRs.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"allows_used\": {},\n", self.allows_used));
        out.push_str(&format!("  \"allows_total\": {},\n", self.allows_total));
        out.push_str(&format!(
            "  \"violations\": {},\n",
            render_diagnostics(&self.violations)
        ));
        out.push_str(&format!(
            "  \"warnings\": {}\n",
            render_diagnostics(&self.warnings)
        ));
        out.push_str("}\n");
        out
    }
}

fn render_diagnostics(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "[]".to_string();
    }
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                json_string(&d.rule),
                json_string(&d.path),
                d.line,
                json_string(&d.message)
            )
        })
        .collect();
    format!("[\n{}\n  ]", items.join(",\n"))
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line,
            message: "a \"quoted\" message".to_string(),
        }
    }

    #[test]
    fn human_report_mentions_everything() {
        let summary = RunSummary {
            files_scanned: 3,
            violations: vec![diag("D1", 7)],
            warnings: vec![],
            allows_used: 1,
            allows_total: 2,
        };
        let text = summary.render_human();
        assert!(text.contains("crates/x/src/lib.rs:7: [D1]"));
        assert!(text.contains("1 violation(s)"));
        assert!(!summary.clean());
    }

    #[test]
    fn json_escapes_quotes_and_parses_shapewise() {
        let summary = RunSummary {
            files_scanned: 1,
            violations: vec![diag("F1", 2)],
            warnings: vec![],
            allows_used: 0,
            allows_total: 0,
        };
        let json = summary.render_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"rule\": \"F1\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
