//! Per-file lint engine: file classification, `#[cfg(test)]` region
//! detection, `lint:allow` directive handling and rule dispatch.

use crate::rules::{self, RuleHit};
use crate::tokenizer::{self, Lexed, TokenKind};

/// A confirmed lint violation (or directive problem) in one file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (`D1`…`P1`, or `A0`/`A1` for directive problems).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Explanation.
    pub message: String,
}

/// Lint results for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Hard violations — any of these fails the run.
    pub violations: Vec<Diagnostic>,
    /// Non-fatal notes (currently: unused `lint:allow` directives).
    pub warnings: Vec<Diagnostic>,
    /// Well-formed `lint:allow` directives that suppressed at least one hit.
    pub allows_used: usize,
    /// All well-formed `lint:allow` directives in the file.
    pub allows_total: usize,
}

/// What kind of code a file contains, derived from its workspace-relative
/// path. Decides which rules apply (see `docs/LINTS.md` for the matrix).
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// `crates/<name>/…` member name, if any.
    pub crate_name: Option<String>,
    /// Whole file is test code: `tests/` integration dirs and `benches/`.
    pub is_test_file: bool,
    /// Binary target: `src/bin/**` or a `main.rs`.
    pub is_binary: bool,
    /// Example under an `examples/` directory.
    pub is_example: bool,
    /// Part of `crates/bench` (measurement harness; exempt from D1/D2/P1).
    pub is_bench_crate: bool,
    /// Part of `crates/telemetry` (owns the wall clock; exempt from D2/D4).
    pub is_telemetry_crate: bool,
    /// Part of `crates/criterion` (vendored measurement shim; exempt from D4).
    pub is_criterion_crate: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (`/` separators).
    pub fn classify(rel_path: &str) -> Self {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
            Some(parts[1].to_string())
        } else {
            None
        };
        let has_dir = |d: &str| parts.iter().rev().skip(1).any(|p| *p == d);
        let file_name = parts.last().copied().unwrap_or("");
        Self {
            is_test_file: has_dir("tests") || has_dir("benches"),
            is_binary: has_dir("bin") || file_name == "main.rs",
            is_example: has_dir("examples"),
            is_bench_crate: crate_name.as_deref() == Some("bench"),
            is_telemetry_crate: crate_name.as_deref() == Some("telemetry"),
            is_criterion_crate: crate_name.as_deref() == Some("criterion"),
            crate_name,
        }
    }
}

/// A parsed `lint:allow` directive.
#[derive(Debug)]
struct Allow {
    line: u32,
    rules: Vec<String>,
    used: bool,
}

/// Lints one file. `rel_path` is the workspace-relative path used both for
/// rule scoping and in diagnostics.
pub fn check_source(rel_path: &str, source: &str) -> FileReport {
    let class = FileClass::classify(rel_path);
    let lexed = tokenizer::lex(source);
    let in_test = if class.is_test_file {
        vec![true; lexed.tokens.len()]
    } else {
        test_regions(&lexed)
    };

    let mut report = FileReport::default();
    let mut allows = Vec::new();
    for comment in &lexed.comments {
        match parse_allow(&comment.text) {
            ParsedAllow::None => {}
            ParsedAllow::Malformed(why) => report.violations.push(Diagnostic {
                rule: "A0".to_string(),
                path: rel_path.to_string(),
                line: comment.line,
                message: why,
            }),
            ParsedAllow::Allow(rules) => allows.push(Allow {
                line: comment.line,
                rules,
                used: false,
            }),
        }
    }
    report.allows_total = allows.len();

    for hit in rules::scan(&lexed, &class, &in_test) {
        if let Some(allow) = allows.iter_mut().find(|a| {
            (a.line == hit.line || a.line + 1 == hit.line) && a.rules.iter().any(|r| r == hit.rule)
        }) {
            allow.used = true;
            continue;
        }
        report.violations.push(to_diagnostic(rel_path, hit));
    }

    for allow in &allows {
        report.allows_used += usize::from(allow.used);
        if !allow.used {
            report.warnings.push(Diagnostic {
                rule: "A1".to_string(),
                path: rel_path.to_string(),
                line: allow.line,
                message: format!(
                    "unused lint:allow({}) — nothing on this or the next line violates it",
                    allow.rules.join(", ")
                ),
            });
        }
    }
    report.violations.sort_by_key(|d| d.line);
    report
}

fn to_diagnostic(path: &str, hit: RuleHit) -> Diagnostic {
    Diagnostic {
        rule: hit.rule.to_string(),
        path: path.to_string(),
        line: hit.line,
        message: hit.message,
    }
}

enum ParsedAllow {
    None,
    Malformed(String),
    Allow(Vec<String>),
}

/// Parses `lint:allow(R1, R2) -- reason` out of a comment body. The reason
/// is mandatory: an allow without a recorded justification is itself a
/// violation (rule `A0`). Only comments that *begin* with the directive are
/// parsed, so prose that merely mentions `lint:allow` is ignored.
fn parse_allow(comment: &str) -> ParsedAllow {
    let body = comment.trim_start_matches(['/', '!', '*']).trim_start();
    let Some(rest) = body.strip_prefix("lint:allow") else {
        return ParsedAllow::None;
    };
    let Some(open) = rest.find('(') else {
        return ParsedAllow::Malformed(
            "lint:allow directive is missing its (RULE, …) list".to_string(),
        );
    };
    let Some(close) = rest.find(')') else {
        return ParsedAllow::Malformed(
            "lint:allow directive has an unclosed rule list".to_string(),
        );
    };
    if open > close {
        return ParsedAllow::Malformed(
            "lint:allow directive has a malformed rule list".to_string(),
        );
    }
    let rule_list: Vec<String> = rest[open + 1..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rule_list.is_empty() {
        return ParsedAllow::Malformed("lint:allow directive names no rules".to_string());
    }
    if let Some(unknown) = rule_list.iter().find(|r| !rules::is_known_rule(r)) {
        return ParsedAllow::Malformed(format!(
            "lint:allow names unknown rule {unknown:?} (known: {})",
            rules::RULES
                .iter()
                .map(|r| r.id)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let after = &rest[close + 1..];
    let reason = after.trim_start().strip_prefix("--").map(str::trim);
    match reason {
        Some(r) if !r.is_empty() => ParsedAllow::Allow(rule_list),
        _ => ParsedAllow::Malformed(
            "lint:allow requires a justification: `lint:allow(RULE) -- <reason>`".to_string(),
        ),
    }
}

/// Marks tokens covered by `#[test]`- or `#[cfg(test)]`-gated items.
///
/// Heuristic, not a parse: an attribute whose token list contains the
/// identifier `test` (and not `not`, so `#[cfg(not(test))]` stays live code)
/// marks the following item — through any further attributes, up to the
/// matching close brace or a top-level `;` — as test code.
fn test_regions(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !is_attr_start(lexed, i) {
            i += 1;
            continue;
        }
        let start = i;
        let (attr_end, is_test) = scan_attr(lexed, i);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = attr_end;
        while is_attr_start(lexed, k) {
            let (next_end, _) = scan_attr(lexed, k);
            k = next_end;
        }
        // Consume the item: to the matching `}` or a top-level `;`.
        let mut depth = 0i64;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for flag in in_test.iter_mut().take(k).skip(start) {
            *flag = true;
        }
        i = k;
    }
    in_test
}

/// Whether token `i` starts an outer attribute `#[…]`.
fn is_attr_start(lexed: &Lexed, i: usize) -> bool {
    let toks = &lexed.tokens;
    matches!(toks.get(i), Some(t) if t.kind == TokenKind::Op && t.text == "#")
        && matches!(toks.get(i + 1), Some(t) if t.kind == TokenKind::Op && t.text == "[")
}

/// Scans the attribute starting at `i`; returns (index past `]`, is-test).
fn scan_attr(lexed: &Lexed, i: usize) -> (usize, bool) {
    let toks = &lexed.tokens;
    let mut j = i + 2;
    let mut depth = 1i64;
    let mut has_test = false;
    let mut has_not = false;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Op, "[") => depth += 1,
            (TokenKind::Op, "]") => depth -= 1,
            (TokenKind::Ident, "test") => has_test = true,
            (TokenKind::Ident, "not") => has_not = true,
            _ => {}
        }
        j += 1;
    }
    (j, has_test && !has_not)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let lib = FileClass::classify("crates/core/src/asyncfilter.rs");
        assert_eq!(lib.crate_name.as_deref(), Some("core"));
        assert!(!lib.is_binary && !lib.is_test_file && !lib.is_bench_crate);

        let bin = FileClass::classify("crates/bench/src/bin/repro.rs");
        assert!(bin.is_binary && bin.is_bench_crate);

        let main = FileClass::classify("crates/lint/src/main.rs");
        assert!(main.is_binary && !main.is_bench_crate);

        let tele = FileClass::classify("crates/telemetry/src/span.rs");
        assert!(tele.is_telemetry_crate);

        let integration = FileClass::classify("tests/end_to_end.rs");
        assert!(integration.is_test_file);
        assert!(FileClass::classify("examples/quickstart.rs").is_example);
    }

    #[test]
    fn cfg_test_module_is_exempt_from_p1() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn cfg_not_test_is_still_live_code() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "P1");
    }

    #[test]
    fn allow_with_reason_suppresses_and_counts() {
        let src = "fn f() {\n    x.unwrap(); // lint:allow(P1) -- checked above\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.allows_used, 1);
    }

    #[test]
    fn allow_on_previous_line_suppresses() {
        let src = "fn f() {\n    // lint:allow(P1) -- invariant: nonempty\n    x.unwrap();\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "fn f() {\n    x.unwrap(); // lint:allow(P1)\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.iter().any(|d| d.rule == "A0"));
    }

    #[test]
    fn allow_unknown_rule_is_a_violation() {
        let src = "// lint:allow(Z9) -- bogus\nfn f() {}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.iter().any(|d| d.rule == "A0"));
    }

    #[test]
    fn unused_allow_is_a_warning() {
        let src = "// lint:allow(D1) -- stale justification\nfn f() {}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty());
        assert_eq!(report.warnings.len(), 1);
        assert_eq!(report.warnings[0].rule, "A1");
    }
}
