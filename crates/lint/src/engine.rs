//! Per-file lint engine v2: parse → scope tables → AST rules, with the v1
//! token-pattern scan kept as a fallback for files the parser cannot
//! handle, plus file classification, `lint:allow` directive handling
//! (multi-line reasons, staleness detection) and diagnostic rendering.

use crate::ast::LineIndex;
use crate::ast_rules::{self, EventKindUse};
use crate::parser;
use crate::rules::{self, RuleHit};
use crate::scope::FileScope;
use crate::tokenizer::{self, Comment, Lexed, TokenKind};

/// A confirmed lint violation (or directive problem) in one file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (`D1`…`P2`, `X1`, or `A0`/`A2` for directive
    /// problems; `PF` marks a parser-fallback note).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column of the offending span start (0 = unknown).
    pub col: u32,
    /// Byte span `[start, end)` in the file, when known.
    pub span: Option<(u32, u32)>,
    /// The source line the diagnostic points at, when available.
    pub snippet: Option<String>,
    /// Explanation.
    pub message: String,
}

impl Diagnostic {
    fn bare(rule: &str, path: &str, line: u32, message: String) -> Self {
        Self {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            col: 0,
            span: None,
            snippet: None,
            message,
        }
    }
}

/// Lint results for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Hard violations — any of these fails the run.
    pub violations: Vec<Diagnostic>,
    /// Non-fatal notes (currently: parser-fallback files).
    pub warnings: Vec<Diagnostic>,
    /// Well-formed `lint:allow` directives that suppressed at least one hit.
    pub allows_used: usize,
    /// All well-formed `lint:allow` directives in the file.
    pub allows_total: usize,
    /// `Event::<Kind>` constructions collected for the workspace-level X1
    /// contract-drift check.
    pub event_kinds: Vec<EventKindUse>,
    /// Whether the AST parser failed and the token fallback ran (F3/P2 do
    /// not fire in fallback mode).
    pub parse_fallback: bool,
}

/// What kind of code a file contains, derived from its workspace-relative
/// path. Decides which rules apply (see `docs/LINTS.md` for the matrix).
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// `crates/<name>/…` member name, if any.
    pub crate_name: Option<String>,
    /// Whole file is test code: `tests/` integration dirs and `benches/`.
    pub is_test_file: bool,
    /// Binary target: `src/bin/**` or a `main.rs`.
    pub is_binary: bool,
    /// Example under an `examples/` directory.
    pub is_example: bool,
    /// Part of `crates/bench` (measurement harness; exempt from D1/D2/P1).
    pub is_bench_crate: bool,
    /// Part of `crates/telemetry` (owns the wall clock; exempt from D2/D4).
    pub is_telemetry_crate: bool,
    /// Part of `crates/criterion` (vendored measurement shim; exempt from D4).
    pub is_criterion_crate: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (`/` separators).
    pub fn classify(rel_path: &str) -> Self {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
            Some(parts[1].to_string())
        } else {
            None
        };
        let has_dir = |d: &str| parts.iter().rev().skip(1).any(|p| *p == d);
        let file_name = parts.last().copied().unwrap_or("");
        Self {
            is_test_file: has_dir("tests") || has_dir("benches"),
            is_binary: has_dir("bin") || file_name == "main.rs",
            is_example: has_dir("examples"),
            is_bench_crate: crate_name.as_deref() == Some("bench"),
            is_telemetry_crate: crate_name.as_deref() == Some("telemetry"),
            is_criterion_crate: crate_name.as_deref() == Some("criterion"),
            crate_name,
        }
    }
}

/// A parsed `lint:allow` directive with its multi-line coverage window.
#[derive(Debug)]
struct Allow {
    /// Line the directive starts on (for diagnostics).
    line: u32,
    /// Lines `[cover_start, cover_end]` the directive suppresses.
    cover_start: u32,
    cover_end: u32,
    rules: Vec<String>,
    used: bool,
}

/// Lints one file. `rel_path` is the workspace-relative path used both for
/// rule scoping and in diagnostics.
pub fn check_source(rel_path: &str, source: &str) -> FileReport {
    let class = FileClass::classify(rel_path);
    let lexed = tokenizer::lex(source);
    let index = LineIndex::new(source);

    let mut report = FileReport::default();
    let hits: Vec<RuleHit> = match parser::parse_file(&lexed) {
        Ok(file) => {
            let scope = FileScope::build(&file);
            let scan = ast_rules::scan(&file, &scope, &class, rel_path, &lexed, &index);
            report.event_kinds = scan.event_kinds;
            scan.hits
        }
        Err(e) => {
            report.parse_fallback = true;
            let (line, col) = index.line_col(e.span.start);
            report.warnings.push(Diagnostic {
                rule: "PF".to_string(),
                path: rel_path.to_string(),
                line,
                col,
                span: Some((e.span.start, e.span.end)),
                snippet: line_snippet(&index, source, line),
                message: format!(
                    "file did not parse ({}); token-scan fallback ran — F3/P2 and \
                     scope-aware resolution are inactive here",
                    e.message
                ),
            });
            let in_test = if class.is_test_file {
                vec![true; lexed.tokens.len()]
            } else {
                test_regions(&lexed)
            };
            rules::scan(&lexed, &class, &in_test)
        }
    };

    // Directive collection with multi-line reason folding: a directive
    // comment absorbs immediately-following comment lines (rustfmt-wrapped
    // reasons) into its justification, and its coverage window extends one
    // line past the last absorbed comment.
    let mut allows: Vec<Allow> = Vec::new();
    let comments = &lexed.comments;
    let mut i = 0usize;
    while i < comments.len() {
        let c = &comments[i];
        match parse_allow(&c.text) {
            ParsedAllow::None => {}
            ParsedAllow::Malformed(why) => {
                report
                    .violations
                    .push(Diagnostic::bare("A0", rel_path, c.line, why));
            }
            ParsedAllow::Allow { rules, mut reason } => {
                let mut last_end = c.end_line;
                while let Some(nc) = comments.get(i + 1) {
                    if nc.line != last_end + 1 {
                        break;
                    }
                    if !matches!(parse_allow(&nc.text), ParsedAllow::None) {
                        break;
                    }
                    let cont = comment_body(&nc.text);
                    if !cont.is_empty() {
                        if !reason.is_empty() {
                            reason.push(' ');
                        }
                        reason.push_str(cont);
                    }
                    last_end = nc.end_line;
                    i += 1;
                }
                if reason.trim().is_empty() {
                    report.violations.push(Diagnostic::bare(
                        "A0",
                        rel_path,
                        c.line,
                        "lint:allow requires a justification: `lint:allow(RULE) -- <reason>`"
                            .to_string(),
                    ));
                } else {
                    allows.push(Allow {
                        line: c.line,
                        cover_start: c.line,
                        cover_end: last_end + 1,
                        rules,
                        used: false,
                    });
                }
            }
        }
        i += 1;
    }
    report.allows_total = allows.len();

    // Usage is decoupled from suppression: when two directives' windows
    // overlap one hit (e.g. trailing allows on adjacent lines), both are
    // justified by it — an allow is stale only if NO hit lands in its
    // window at all.
    for hit in &hits {
        let mut suppressed = false;
        for allow in allows.iter_mut() {
            if allow.cover_start <= hit.line
                && hit.line <= allow.cover_end
                && allow.rules.iter().any(|r| r == hit.rule)
            {
                allow.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            report
                .violations
                .push(to_diagnostic(rel_path, hit.clone(), source, &index));
        }
    }

    // A2 — stale suppressions are hard errors: an allow whose rule no
    // longer fires in its window is a leftover claim about code that has
    // moved on. Delete it (or fix the window) rather than letting dead
    // justifications accumulate.
    for allow in &allows {
        report.allows_used += usize::from(allow.used);
        if !allow.used {
            report.violations.push(Diagnostic::bare(
                "A2",
                rel_path,
                allow.line,
                format!(
                    "stale lint:allow({}) — nothing in lines {}–{} violates it; \
                     delete the directive",
                    allow.rules.join(", "),
                    allow.cover_start,
                    allow.cover_end
                ),
            ));
        }
    }
    report.violations.sort_by_key(|d| (d.line, d.col));
    report
}

fn line_snippet(index: &LineIndex, source: &str, line: u32) -> Option<String> {
    let text = index.line_text(source, line);
    if text.is_empty() {
        None
    } else {
        Some(text.to_string())
    }
}

fn to_diagnostic(path: &str, hit: RuleHit, source: &str, index: &LineIndex) -> Diagnostic {
    let (line, col) = index.line_col(hit.span.0);
    Diagnostic {
        rule: hit.rule.to_string(),
        path: path.to_string(),
        line,
        col,
        span: Some(hit.span),
        snippet: line_snippet(index, source, line),
        message: hit.message,
    }
}

enum ParsedAllow {
    None,
    Malformed(String),
    Allow {
        rules: Vec<String>,
        /// May be empty on the directive line itself; continuation comment
        /// lines are folded in by the caller before the emptiness check.
        reason: String,
    },
}

/// Strips comment sigils from a comment body.
fn comment_body(comment: &str) -> &str {
    comment
        .trim_start_matches(['/', '!', '*'])
        .trim_start()
        .trim_end_matches("*/")
        .trim_end()
}

/// Parses `lint:allow(R1, R2) -- reason` out of a comment body. The reason
/// is mandatory but may continue on following comment lines (the engine
/// folds those in). Only comments that *begin* with the directive are
/// parsed, so prose that merely mentions `lint:allow` is ignored.
fn parse_allow(comment: &str) -> ParsedAllow {
    let body = comment_body(comment);
    let Some(rest) = body.strip_prefix("lint:allow") else {
        return ParsedAllow::None;
    };
    let Some(open) = rest.find('(') else {
        return ParsedAllow::Malformed(
            "lint:allow directive is missing its (RULE, …) list".to_string(),
        );
    };
    let Some(close) = rest.find(')') else {
        return ParsedAllow::Malformed(
            "lint:allow directive has an unclosed rule list".to_string(),
        );
    };
    if open > close {
        return ParsedAllow::Malformed(
            "lint:allow directive has a malformed rule list".to_string(),
        );
    }
    let rule_list: Vec<String> = rest[open + 1..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rule_list.is_empty() {
        return ParsedAllow::Malformed("lint:allow directive names no rules".to_string());
    }
    if let Some(unknown) = rule_list.iter().find(|r| !rules::is_known_rule(r)) {
        return ParsedAllow::Malformed(format!(
            "lint:allow names unknown rule {unknown:?} (known: {})",
            rules::RULES
                .iter()
                .map(|r| r.id)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    let after = &rest[close + 1..];
    match after.trim_start().strip_prefix("--").map(str::trim) {
        Some(r) => ParsedAllow::Allow {
            rules: rule_list,
            reason: r.to_string(),
        },
        None => ParsedAllow::Malformed(
            "lint:allow requires a justification: `lint:allow(RULE) -- <reason>`".to_string(),
        ),
    }
}

/// Marks tokens covered by `#[test]`- or `#[cfg(test)]`-gated items.
///
/// Fallback-path heuristic (the AST path computes this from parsed
/// attributes): an attribute whose token list contains the identifier
/// `test` (and not `not`, so `#[cfg(not(test))]` stays live code) marks the
/// following item — through any further attributes, up to the matching
/// close brace or a top-level `;` — as test code.
fn test_regions(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !is_attr_start(lexed, i) {
            i += 1;
            continue;
        }
        let start = i;
        let (attr_end, is_test) = scan_attr(lexed, i);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = attr_end;
        while is_attr_start(lexed, k) {
            let (next_end, _) = scan_attr(lexed, k);
            k = next_end;
        }
        // Consume the item: to the matching `}` or a top-level `;`.
        let mut depth = 0i64;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for flag in in_test.iter_mut().take(k).skip(start) {
            *flag = true;
        }
        i = k;
    }
    in_test
}

/// Whether token `i` starts an outer attribute `#[…]`.
fn is_attr_start(lexed: &Lexed, i: usize) -> bool {
    let toks = &lexed.tokens;
    matches!(toks.get(i), Some(t) if t.kind == TokenKind::Op && t.text == "#")
        && matches!(toks.get(i + 1), Some(t) if t.kind == TokenKind::Op && t.text == "[")
}

/// Scans the attribute starting at `i`; returns (index past `]`, is-test).
fn scan_attr(lexed: &Lexed, i: usize) -> (usize, bool) {
    let toks = &lexed.tokens;
    let mut j = i + 2;
    let mut depth = 1i64;
    let mut has_test = false;
    let mut has_not = false;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Op, "[") => depth += 1,
            (TokenKind::Op, "]") => depth -= 1,
            (TokenKind::Ident, "test") => has_test = true,
            (TokenKind::Ident, "not") => has_not = true,
            _ => {}
        }
        j += 1;
    }
    (j, has_test && !has_not)
}

// Suppress an unused-field warning until a caller needs raw comments.
#[allow(dead_code)]
fn _comment_fields(c: &Comment) -> (u32, u32) {
    (c.start, c.end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let lib = FileClass::classify("crates/core/src/asyncfilter.rs");
        assert_eq!(lib.crate_name.as_deref(), Some("core"));
        assert!(!lib.is_binary && !lib.is_test_file && !lib.is_bench_crate);

        let bin = FileClass::classify("crates/bench/src/bin/repro.rs");
        assert!(bin.is_binary && bin.is_bench_crate);

        let main = FileClass::classify("crates/lint/src/main.rs");
        assert!(main.is_binary && !main.is_bench_crate);

        let tele = FileClass::classify("crates/telemetry/src/span.rs");
        assert!(tele.is_telemetry_crate);

        let integration = FileClass::classify("tests/end_to_end.rs");
        assert!(integration.is_test_file);
        assert!(FileClass::classify("examples/quickstart.rs").is_example);
    }

    #[test]
    fn cfg_test_module_is_exempt_from_p1() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn cfg_not_test_is_still_live_code() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "P1");
    }

    #[test]
    fn allow_with_reason_suppresses_and_counts() {
        let src = "fn f() {\n    x.unwrap(); // lint:allow(P1) -- checked above\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.allows_used, 1);
    }

    #[test]
    fn allow_on_previous_line_suppresses() {
        let src = "fn f() {\n    // lint:allow(P1) -- invariant: nonempty\n    x.unwrap();\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "fn f() {\n    x.unwrap(); // lint:allow(P1)\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.iter().any(|d| d.rule == "A0"));
    }

    #[test]
    fn allow_unknown_rule_is_a_violation() {
        let src = "// lint:allow(Z9) -- bogus\nfn f() {}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.iter().any(|d| d.rule == "A0"));
    }

    #[test]
    fn stale_allow_is_an_error() {
        let src = "fn f() {\n    // lint:allow(D1) -- stale justification\n    let x = 1;\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "A2");
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn wrapped_reason_folds_into_directive() {
        // rustfmt wrapping splits the reason across comment lines; the
        // directive must keep its justification AND still cover the code
        // line that follows the wrapped block.
        let src = "fn f() {\n    // lint:allow(P1) --\n    // invariant: the buffer is\n    // non-empty after insert\n    x.unwrap();\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.allows_used, 1);
    }

    #[test]
    fn wrapped_reason_with_partial_first_line() {
        let src = "fn f() {\n    // lint:allow(P1) -- invariant: the\n    // buffer is non-empty\n    x.unwrap();\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.allows_used, 1);
    }

    #[test]
    fn diagnostics_carry_position_and_snippet() {
        let src = "fn f() {\n    x.unwrap();\n}\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert_eq!(report.violations.len(), 1);
        let d = &report.violations[0];
        assert_eq!(d.line, 2);
        assert_eq!(d.col, 7, "col points at `unwrap`");
        assert_eq!(d.snippet.as_deref(), Some("    x.unwrap();"));
        let (s, e) = d.span.expect("span");
        assert_eq!(&src[s as usize..e as usize], "unwrap");
    }

    #[test]
    fn malformed_file_falls_back_to_token_scan() {
        let src = "fn f( {\n    let q = x.unwrap();\n";
        let report = check_source("crates/core/src/x.rs", src);
        assert!(report.parse_fallback);
        assert!(report.warnings.iter().any(|w| w.rule == "PF"));
        assert!(
            report.violations.iter().any(|d| d.rule == "P1"),
            "fallback still catches P1: {:?}",
            report.violations
        );
    }
}
