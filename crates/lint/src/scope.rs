//! Per-file symbol/scope tables built from the AST.
//!
//! The scope table answers the question the token engine never could:
//! *what does this name mean here?* It folds a file's `use` tree (including
//! `as` renames and glob imports) together with locally defined type names,
//! so rules can distinguish `std::collections::HashMap` from a local
//! `struct HashMap` or a `type HashMap = BTreeMap<…>` alias.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{File, Item, ItemKind, Path};

/// Resolution result for a name or path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolved {
    /// The canonical absolute path the name resolves to via `use`.
    Import(Vec<String>),
    /// The name is defined in this file (type, alias, trait, fn).
    Local,
    /// No import or local definition matches; the path is taken at face
    /// value (prelude name, or an absolute path written inline).
    Unresolved,
}

/// Symbol table for one file: imports and locally defined names.
#[derive(Debug, Default)]
pub struct FileScope {
    /// `alias → full path` for every non-glob `use` entry.
    imports: BTreeMap<String, Vec<String>>,
    /// Prefixes imported via `use path::*`.
    globs: Vec<Vec<String>>,
    /// Type-like names defined in this file (structs, enums, unions,
    /// aliases, traits), which shadow imports and prelude names.
    local_types: BTreeSet<String>,
    /// Function names defined in this file.
    local_fns: BTreeSet<String>,
}

impl FileScope {
    /// Builds the scope table by walking the file's item tree, including
    /// inline `mod` bodies. Inline modules technically open nested scopes;
    /// folding them flat errs toward *more* names being "local", which for
    /// lint purposes is the safe direction (fewer false positives).
    pub fn build(file: &File) -> Self {
        let mut scope = Self::default();
        for item in &file.items {
            scope.collect(item);
        }
        scope
    }

    fn collect(&mut self, item: &Item) {
        match &item.kind {
            ItemKind::Use(entries) => {
                for e in entries {
                    match &e.alias {
                        Some(alias) => {
                            self.imports.insert(alias.clone(), e.path.clone());
                        }
                        None => self.globs.push(e.path.clone()),
                    }
                }
            }
            ItemKind::TypeDef { name, .. } | ItemKind::TypeAlias { name, .. } => {
                self.local_types.insert(name.clone());
            }
            ItemKind::Trait { name, items } => {
                self.local_types.insert(name.clone());
                for it in items {
                    self.collect(it);
                }
            }
            ItemKind::Fn(f) => {
                self.local_fns.insert(f.name.clone());
            }
            ItemKind::Impl { items, .. } => {
                for it in items {
                    self.collect(it);
                }
            }
            ItemKind::Mod {
                items: Some(items), ..
            } => {
                for it in items {
                    self.collect(it);
                }
            }
            _ => {}
        }
    }

    /// Whether `name` is defined as a type in this file.
    pub fn is_local_type(&self, name: &str) -> bool {
        self.local_types.contains(name)
    }

    /// Resolves a bare name through the import map.
    pub fn resolve_name(&self, name: &str) -> Resolved {
        if self.local_types.contains(name) || self.local_fns.contains(name) {
            return Resolved::Local;
        }
        match self.imports.get(name) {
            Some(full) => Resolved::Import(full.clone()),
            None => Resolved::Unresolved,
        }
    }

    /// Canonicalizes a (possibly multi-segment) path: if its first segment
    /// is an import alias, splice in the imported path. `crate`, `self`,
    /// and `super` prefixes are preserved as written.
    pub fn canonicalize(&self, path: &Path) -> Vec<String> {
        let mut segs = path.segments.clone();
        let Some(first) = segs.first() else {
            return segs;
        };
        if matches!(first.as_str(), "crate" | "self" | "super") {
            return segs;
        }
        if segs.len() == 1 {
            // Bare names resolve via `resolve_name`; canonicalization
            // applies to qualified paths.
            if let Some(full) = self.imports.get(first) {
                return full.clone();
            }
            return segs;
        }
        if self.local_types.contains(first) {
            return segs;
        }
        if let Some(full) = self.imports.get(first) {
            let mut out = full.clone();
            out.extend(segs.drain(1..));
            return out;
        }
        segs
    }

    /// The glob-import prefixes in effect for this file.
    pub fn globs(&self) -> &[Vec<String>] {
        &self.globs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::tokenizer::lex;

    fn scope_of(src: &str) -> FileScope {
        let lexed = lex(src);
        let file = parse_file(&lexed).unwrap_or_else(|e| panic!("parse failed: {}", e.message));
        FileScope::build(&file)
    }

    #[test]
    fn use_rename_resolves_to_full_path() {
        let s = scope_of("use std::collections::HashMap as Map;\n");
        assert_eq!(
            s.resolve_name("Map"),
            Resolved::Import(vec!["std".into(), "collections".into(), "HashMap".into()])
        );
        assert_eq!(s.resolve_name("HashMap"), Resolved::Unresolved);
    }

    #[test]
    fn nested_use_tree_flattens() {
        let s = scope_of("use std::collections::{BTreeMap, btree_map::Entry};\n");
        assert_eq!(
            s.resolve_name("BTreeMap"),
            Resolved::Import(vec!["std".into(), "collections".into(), "BTreeMap".into()])
        );
        assert_eq!(
            s.resolve_name("Entry"),
            Resolved::Import(vec![
                "std".into(),
                "collections".into(),
                "btree_map".into(),
                "Entry".into()
            ])
        );
    }

    #[test]
    fn local_type_shadows() {
        let s = scope_of("struct HashMap;\nfn go() {}\n");
        assert_eq!(s.resolve_name("HashMap"), Resolved::Local);
        assert!(s.is_local_type("HashMap"));
        assert_eq!(s.resolve_name("go"), Resolved::Local);
    }

    #[test]
    fn qualified_path_canonicalizes_through_alias() {
        let s = scope_of("use std::collections as coll;\n");
        let p = Path {
            segments: vec!["coll".into(), "HashMap".into()],
            span: Default::default(),
        };
        assert_eq!(
            s.canonicalize(&p),
            vec![
                "std".to_string(),
                "collections".to_string(),
                "HashMap".to_string()
            ]
        );
    }

    #[test]
    fn glob_imports_recorded() {
        let s = scope_of("use std::collections::*;\n");
        assert_eq!(
            s.globs(),
            &[vec!["std".to_string(), "collections".to_string()]]
        );
    }
}
