//! The lint AST: items, blocks, statements and expressions, with byte
//! spans, produced by [`crate::parser`].
//!
//! This is a *lint-grade* AST, not a compiler front-end: it keeps exactly
//! the structure the rule families need — paths (so `use` resolution can
//! distinguish `std::collections::HashMap` from a local type of the same
//! name), method calls with turbofish (so `.sum::<f64>()` is visible),
//! index expressions, assignment operators, loop/closure nesting (for the
//! reduction dataflow in rule `F3`), `let` bindings with type annotations
//! (the scope table tracks float-typed locals), and macro invocations with
//! best-effort re-parsed arguments. Everything it does not understand it
//! preserves as opaque nodes rather than failing, and a file that does not
//! parse at all falls back to the token-pattern engine (see
//! `crate::engine`).

/// A half-open byte range into the source file, plus the 1-based line the
/// node starts on. Columns are derived lazily via [`LineIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: u32,
    /// Byte offset one past the last byte.
    pub end: u32,
    /// 1-based line of `start`.
    pub line: u32,
}

impl Span {
    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

/// Line-start table for byte-offset → (line, column) conversion.
#[derive(Debug)]
pub struct LineIndex {
    /// Byte offset at which each 0-based line starts.
    starts: Vec<u32>,
}

impl LineIndex {
    /// Builds the index for `source`.
    pub fn new(source: &str) -> Self {
        let mut starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i as u32 + 1);
            }
        }
        Self { starts }
    }

    /// 1-based (line, column) of a byte offset. Columns count bytes from
    /// the line start, which matches what editors display for ASCII
    /// source.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let line = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = offset - self.starts[line];
        (line as u32 + 1, col + 1)
    }

    /// The full text of the 1-based `line` in `source`, without its
    /// trailing newline. Empty for out-of-range lines.
    pub fn line_text<'s>(&self, source: &'s str, line: u32) -> &'s str {
        let idx = line.saturating_sub(1) as usize;
        let Some(&start) = self.starts.get(idx) else {
            return "";
        };
        let end = self
            .starts
            .get(idx + 1)
            .map(|&e| e as usize)
            .unwrap_or(source.len());
        source[start as usize..end].trim_end_matches(['\n', '\r'])
    }
}

/// An attribute (`#[...]` or `#![...]`), summarized for test-gating.
#[derive(Debug, Clone)]
pub struct Attr {
    /// Whether the attribute gates the following item to test builds:
    /// it mentions `test` and not `not` (so `#[cfg(not(test))]` stays
    /// live code).
    pub test_gate: bool,
    /// Source span of the whole attribute.
    pub span: Span,
}

/// One segment of a path, generics erased.
pub type PathSegment = String;

/// A (possibly qualified) path: `a::b::C`. Generic arguments are parsed
/// past but not retained; turbofish on method calls is kept separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Path segments in source order. `crate`, `self`, `super` are kept
    /// verbatim as leading segments.
    pub segments: Vec<PathSegment>,
    /// Source span of the whole path.
    pub span: Span,
}

impl Path {
    /// The final segment, or `""` for an (impossible) empty path.
    pub fn last(&self) -> &str {
        self.segments.last().map(String::as_str).unwrap_or("")
    }

    /// Renders the path as `a::b::c`.
    pub fn render(&self) -> String {
        self.segments.join("::")
    }
}

/// A flattened `use` declaration: one imported name (or glob).
#[derive(Debug, Clone)]
pub struct UseEntry {
    /// The full path being imported, e.g. `std::collections::HashMap`.
    pub path: Vec<String>,
    /// The name it binds locally (`HashMap`, or the rename after `as`).
    /// `None` for glob imports (`use x::*`).
    pub alias: Option<String>,
    /// Span of the entry (the leaf, not the whole `use` item).
    pub span: Span,
}

/// A type reference, kept as normalized text plus cheap classification.
#[derive(Debug, Clone)]
pub struct TypeRef {
    /// The type tokens joined with single spaces (`& [f64]`, `Vec < f64 >`
    /// collapse to `&[f64]` / `Vec<f64>` best-effort).
    pub text: String,
    /// Span of the type.
    pub span: Span,
}

impl TypeRef {
    /// Whether this is a bare float scalar type (`f32`/`f64`, possibly
    /// behind references or `mut`).
    pub fn is_float_scalar(&self) -> bool {
        let t = self
            .text
            .trim_start_matches(['&', ' '])
            .trim_start_matches("mut ")
            .trim();
        t == "f32" || t == "f64"
    }
}

/// Binding names introduced by a pattern. This is a summary, not a full
/// pattern tree: the scope table only needs names (and, for `let`, whether
/// the pattern is one plain binding so an initializer type can be
/// propagated to it).
#[derive(Debug, Clone, Default)]
pub struct PatSummary {
    /// All identifiers the pattern binds, best-effort.
    pub bindings: Vec<String>,
    /// When the pattern is a single plain binding (`x`, `mut x`, `ref x`),
    /// its name — the only case initializer types propagate.
    pub single: Option<String>,
    /// Span of the pattern.
    pub span: Span,
}

/// A macro invocation: `path!(...)`, `path![...]` or `path! {...}`.
#[derive(Debug, Clone)]
pub struct MacroCall {
    /// The macro path (usually one segment: `panic`, `debug_assert_eq`).
    pub path: Path,
    /// Arguments re-parsed as comma-separated expressions, when the body
    /// parses that way. Macros with non-expression grammars (e.g.
    /// `matches!`'s pattern arm, `macro_rules!` bodies) leave this empty.
    pub args: Vec<Expr>,
    /// Span of the whole invocation.
    pub span: Span,
}

/// Binary operators the rules distinguish; everything else is `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `+`
    Add,
    /// Any other binary operator.
    Other,
}

/// Literal kinds the rules inspect.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal text.
    Int(String),
    /// Float literal text (see `tokenizer::float_literal_is_zero`).
    Float(String),
    /// String/char/byte literal (content not retained).
    Other,
    /// `true` / `false`.
    Bool(bool),
}

/// Expression node.
#[derive(Debug, Clone)]
pub struct Expr {
    /// What kind of expression this is.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Expression kinds. Boxes keep the enum small; `Opaque` preserves spans
/// for constructs the parser recognized but the rules never inspect.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// A path expression (`x`, `a::b::C`), including lone identifiers.
    Path(Path),
    /// A literal.
    Lit(Lit),
    /// Unary `-`/`!`/`*` applied to an expression.
    Unary(Box<Expr>),
    /// Borrow `&`/`&mut`.
    Ref(Box<Expr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Raw operator text (`==`, `<`, `+`, …).
        op_text: String,
        /// Operator span (diagnostics anchor here).
        op_span: Span,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Plain assignment `lhs = rhs`.
    Assign {
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// Compound assignment `lhs op= rhs`.
    AssignOp {
        /// Operator text including `=` (`+=`, `*=`, …).
        op_text: String,
        /// Operator span.
        op_span: Span,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// A function or tuple-struct call `callee(args…)`.
    Call {
        /// The callee expression (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A method call `recv.name::<T…>(args…)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Span of the method name (diagnostics anchor here).
        name_span: Span,
        /// Turbofish type arguments as raw text, e.g. `["f64"]`.
        turbofish: Vec<String>,
        /// Arguments (excluding the receiver).
        args: Vec<Expr>,
    },
    /// Field access `recv.name` / tuple field `recv.0`.
    Field(Box<Expr>),
    /// An index expression `recv[index]`.
    Index {
        /// The indexed expression.
        recv: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
        /// Whether the index is syntactically a range (`a..b`, `..`, …) —
        /// a slicing operation rather than an element access.
        is_range: bool,
    },
    /// A macro invocation in expression position.
    Macro(MacroCall),
    /// A block expression, including `unsafe { … }`.
    Block(Block),
    /// `if cond { … } else …` (the condition of an `if let` is the
    /// scrutinee expression).
    If {
        /// Condition (or `if let` scrutinee).
        cond: Box<Expr>,
        /// Bindings introduced by an `if let` pattern, visible in `then`.
        pat: Option<PatSummary>,
        /// The `then` block.
        then: Block,
        /// The `else` branch (a Block or another If), if any.
        else_: Option<Box<Expr>>,
    },
    /// `while cond { … }` / `while let pat = e { … }`.
    While {
        /// Condition (or `while let` scrutinee).
        cond: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `loop { … }`.
    Loop(Block),
    /// `for pat in iter { … }`.
    For {
        /// Loop pattern bindings.
        pat: PatSummary,
        /// The iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `match scrutinee { arms… }`. Arm patterns are summarized; guards
    /// and bodies are kept as expressions.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// `(pattern, guard, body)` per arm.
        arms: Vec<(PatSummary, Option<Expr>, Expr)>,
    },
    /// A closure `|args| body` / `move |args| body`.
    Closure {
        /// Parameter bindings.
        params: PatSummary,
        /// The closure body.
        body: Box<Expr>,
    },
    /// A range expression `a..b` / `a..=b` / `..` outside an index.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
    /// `expr as Type`.
    Cast {
        /// The cast operand.
        expr: Box<Expr>,
        /// Target type.
        ty: TypeRef,
    },
    /// A struct literal `Path { field: expr, … }`.
    Struct {
        /// The struct (or enum-variant) path.
        path: Path,
        /// Field initializers (shorthand fields have `None`).
        fields: Vec<(String, Option<Expr>)>,
        /// The `..base` functional-update expression, if present.
        rest: Option<Box<Expr>>,
    },
    /// Tuple `(a, b, …)` or parenthesized expression (single element).
    Tuple(Vec<Expr>),
    /// Array literal `[a, b, …]`.
    Array(Vec<Expr>),
    /// Array repeat `[elem; len]`.
    Repeat {
        /// The repeated element.
        elem: Box<Expr>,
        /// The length expression.
        len: Box<Expr>,
    },
    /// `return e?` / `break e?` / `continue`.
    Jump(Option<Box<Expr>>),
    /// The `?` operator.
    Try(Box<Expr>),
    /// `.await`.
    Await(Box<Expr>),
    /// Recognized but uninspected constructs (e.g. `const { … }` blocks).
    Opaque,
}

/// A block `{ … }`.
#[derive(Debug, Clone)]
pub struct Block {
    /// Statements in order; a trailing expression is the last `Stmt::Expr`
    /// with `semi == false`.
    pub stmts: Vec<Stmt>,
    /// Span including the braces.
    pub span: Span,
}

impl Block {
    /// The block's tail expression (`{ …; expr }`), if any.
    pub fn tail_expr(&self) -> Option<&Expr> {
        match self.stmts.last() {
            Some(Stmt::Expr { expr, semi: false }) => Some(expr),
            _ => None,
        }
    }
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let pat[: ty] [= init] [else { … }];`
    Let {
        /// The pattern.
        pat: PatSummary,
        /// Optional type annotation.
        ty: Option<TypeRef>,
        /// Optional initializer.
        init: Option<Expr>,
        /// Optional `else` diverging block (let-else).
        els: Option<Block>,
        /// Statement span.
        span: Span,
    },
    /// An expression statement.
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether it was terminated by `;`.
        semi: bool,
    },
    /// A nested item (fn-in-fn, use-in-fn, …).
    Item(Box<Item>),
}

/// A function signature + body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Parameter summaries: binding name (when simple) and type.
    pub params: Vec<(Option<String>, Option<TypeRef>)>,
    /// Return type, `None` for `()`.
    pub ret: Option<TypeRef>,
    /// Body; `None` for trait method declarations and `extern` fns.
    pub body: Option<Block>,
}

/// Item kinds.
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// A `use` declaration, flattened.
    Use(Vec<UseEntry>),
    /// `fn`.
    Fn(FnItem),
    /// `struct` / `enum` / `union` / `trait alias` — only the defined
    /// name matters (it shadows imports during path resolution).
    TypeDef {
        /// The defined type's name.
        name: String,
        /// Enum variant names (empty otherwise) — `X1` uses these for
        /// `Event` catalogues.
        variants: Vec<String>,
    },
    /// `type Alias = …;`
    TypeAlias {
        /// The alias name.
        name: String,
        /// The aliased type.
        ty: Option<TypeRef>,
    },
    /// `const`/`static` with optional initializer expression.
    ConstStatic {
        /// The item name.
        name: String,
        /// Declared type.
        ty: Option<TypeRef>,
        /// Initializer.
        init: Option<Expr>,
    },
    /// `impl [Trait for] Type { items… }`.
    Impl {
        /// The trait being implemented, if any.
        trait_path: Option<Path>,
        /// Nested items (methods, consts).
        items: Vec<Item>,
    },
    /// `trait Name { items… }`.
    Trait {
        /// Trait name.
        name: String,
        /// Nested items.
        items: Vec<Item>,
    },
    /// `mod name;` or `mod name { items… }`.
    Mod {
        /// Module name.
        name: String,
        /// Inline items; `None` for out-of-line modules.
        items: Option<Vec<Item>>,
    },
    /// A macro invocation at item position, including `macro_rules!`
    /// definitions (whose bodies are templates, not code — they are not
    /// linted; see `docs/LINTS.md`).
    Macro(MacroCall),
    /// `extern crate name;`
    ExternCrate(String),
    /// Anything else (`extern` blocks, `impl` with exotic headers the
    /// parser skipped over, …) — consumed as a balanced token run.
    Opaque,
}

/// One item with its attributes.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// Whether any attribute test-gates this item (`#[cfg(test)]`,
    /// `#[test]`).
    pub test_gated: bool,
    /// Source span (attributes included).
    pub span: Span,
}

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Top-level items.
    pub items: Vec<Item>,
}

/// AST visitor with default deep-walk behaviour. Rules implement the
/// `visit_*` hooks they care about and call the matching `walk_*` to
/// recurse; see `docs/LINTS.md` § "writing a new rule".
pub trait Visitor {
    /// Visits one item. Default: recurse.
    fn visit_item(&mut self, item: &Item) {
        walk_item(self, item);
    }
    /// Visits one statement. Default: recurse.
    fn visit_stmt(&mut self, stmt: &Stmt) {
        walk_stmt(self, stmt);
    }
    /// Visits one expression. Default: recurse.
    fn visit_expr(&mut self, expr: &Expr) {
        walk_expr(self, expr);
    }
    /// Visits one block. Default: recurse.
    fn visit_block(&mut self, block: &Block) {
        walk_block(self, block);
    }
}

/// Recurses into an item's children.
pub fn walk_item<V: Visitor + ?Sized>(v: &mut V, item: &Item) {
    match &item.kind {
        ItemKind::Fn(f) => {
            if let Some(body) = &f.body {
                v.visit_block(body);
            }
        }
        ItemKind::ConstStatic {
            init: Some(init), ..
        } => {
            v.visit_expr(init);
        }
        ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => {
            for it in items {
                v.visit_item(it);
            }
        }
        ItemKind::Mod {
            items: Some(items), ..
        } => {
            for it in items {
                v.visit_item(it);
            }
        }
        ItemKind::Macro(mac) => {
            for arg in &mac.args {
                v.visit_expr(arg);
            }
        }
        _ => {}
    }
}

/// Recurses into a statement's children.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, stmt: &Stmt) {
    match stmt {
        Stmt::Let { init, els, .. } => {
            if let Some(init) = init {
                v.visit_expr(init);
            }
            if let Some(els) = els {
                v.visit_block(els);
            }
        }
        Stmt::Expr { expr, .. } => v.visit_expr(expr),
        Stmt::Item(item) => v.visit_item(item),
    }
}

/// Recurses into a block's statements.
pub fn walk_block<V: Visitor + ?Sized>(v: &mut V, block: &Block) {
    for stmt in &block.stmts {
        v.visit_stmt(stmt);
    }
}

/// Recurses into an expression's children.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, expr: &Expr) {
    match &expr.kind {
        ExprKind::Path(_) | ExprKind::Lit(_) | ExprKind::Opaque => {}
        ExprKind::Unary(e)
        | ExprKind::Ref(e)
        | ExprKind::Field(e)
        | ExprKind::Try(e)
        | ExprKind::Await(e) => v.visit_expr(e),
        ExprKind::Binary { lhs, rhs, .. }
        | ExprKind::Assign { lhs, rhs }
        | ExprKind::AssignOp { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Call { callee, args } => {
            v.visit_expr(callee);
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            v.visit_expr(recv);
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Index { recv, index, .. } => {
            v.visit_expr(recv);
            v.visit_expr(index);
        }
        ExprKind::Macro(mac) => {
            for a in &mac.args {
                v.visit_expr(a);
            }
        }
        ExprKind::Block(b) | ExprKind::Loop(b) => v.visit_block(b),
        ExprKind::If {
            cond, then, else_, ..
        } => {
            v.visit_expr(cond);
            v.visit_block(then);
            if let Some(e) = else_ {
                v.visit_expr(e);
            }
        }
        ExprKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_block(body);
        }
        ExprKind::For { iter, body, .. } => {
            v.visit_expr(iter);
            v.visit_block(body);
        }
        ExprKind::Match { scrutinee, arms } => {
            v.visit_expr(scrutinee);
            for (_, guard, body) in arms {
                if let Some(g) = guard {
                    v.visit_expr(g);
                }
                v.visit_expr(body);
            }
        }
        ExprKind::Closure { body, .. } => v.visit_expr(body),
        ExprKind::Range { lo, hi } => {
            if let Some(e) = lo {
                v.visit_expr(e);
            }
            if let Some(e) = hi {
                v.visit_expr(e);
            }
        }
        ExprKind::Cast { expr: e, .. } => v.visit_expr(e),
        ExprKind::Struct { fields, rest, .. } => {
            for (_, init) in fields {
                if let Some(e) = init {
                    v.visit_expr(e);
                }
            }
            if let Some(r) = rest {
                v.visit_expr(r);
            }
        }
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for e in es {
                v.visit_expr(e);
            }
        }
        ExprKind::Repeat { elem, len } => {
            v.visit_expr(elem);
            v.visit_expr(len);
        }
        ExprKind::Jump(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_index_round_trips() {
        let src = "ab\ncd\n\nxyz";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(1), (1, 2));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(6), (3, 1));
        assert_eq!(idx.line_col(7), (4, 1));
        assert_eq!(idx.line_text(src, 2), "cd");
        assert_eq!(idx.line_text(src, 4), "xyz");
        assert_eq!(idx.line_text(src, 99), "");
    }

    #[test]
    fn type_ref_float_detection() {
        let float = |t: &str| TypeRef {
            text: t.to_string(),
            span: Span::default(),
        };
        assert!(float("f64").is_float_scalar());
        assert!(float("&mut f32").is_float_scalar());
        assert!(!float("Vec<f64>").is_float_scalar());
        assert!(!float("u64").is_float_scalar());
    }
}
