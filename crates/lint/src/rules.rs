//! The project-invariant rules and the token-pattern scan that enforces
//! them.
//!
//! Every rule exists because AsyncFilter's verdicts hinge on floating-point
//! suspicious scores (paper eqs. 6–7) and a 1-D 3-means over them (§4.3):
//! a NaN-unsafe sort, a `HashMap` iteration in filter state, or an ambient
//! entropy source silently makes accept/defer/reject decisions
//! nondeterministic — the failure mode that makes poisoning-detection
//! reproductions untrustworthy. See `docs/LINTS.md` for the full catalogue.

use crate::engine::FileClass;
use crate::tokenizer::{float_literal_is_zero, Lexed, TokenKind};

/// Static description of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Short stable identifier (`D1`, `F2`, …) used in reports and
    /// `lint:allow` directives.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// All rules, in catalogue order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D1",
        summary: "no HashMap/HashSet in non-test code (iteration order is nondeterministic)",
    },
    Rule {
        id: "D2",
        summary: "no ambient entropy or wall-clock time sources (seeded RNG only)",
    },
    Rule {
        id: "D3",
        summary: "no external rand/crossbeam/parking_lot in non-test code (hermetic build)",
    },
    Rule {
        id: "D4",
        summary: "no bare Instant::now() outside the telemetry crate (use telemetry::Stopwatch)",
    },
    Rule {
        id: "F1",
        summary: "no partial_cmp on floats (NaN-unsafe); use f64::total_cmp",
    },
    Rule {
        id: "F2",
        summary: "no float ==/!= against nonzero literals or NaN/INFINITY in non-test code",
    },
    Rule {
        id: "F3",
        summary: "no ad-hoc float reductions (sum/fold/+= loops) outside asyncfl-tensor::kernels",
    },
    Rule {
        id: "P1",
        summary: "no unwrap()/expect()/panic! in library non-test code",
    },
    Rule {
        id: "P2",
        summary: "no unchecked slice/array indexing in non-test code of hot-path crates",
    },
    Rule {
        id: "X1",
        summary: "cross-file contract drift: Event kinds and rule ids must be documented",
    },
];

/// Whether `id` names a known rule (used to validate `lint:allow` lists).
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One raw rule match, before `lint:allow` filtering.
#[derive(Debug, Clone)]
pub struct RuleHit {
    /// Rule identifier.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Byte span `[start, end)` of the offending tokens in the source.
    pub span: (u32, u32),
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// Scans a lexed file for rule violations. `in_test[i]` marks tokens inside
/// `#[cfg(test)]` / `#[test]` regions.
pub fn scan(lexed: &Lexed, class: &FileClass, in_test: &[bool]) -> Vec<RuleHit> {
    let toks = &lexed.tokens;
    let mut hits = Vec::new();

    let d1_applies = !class.is_bench_crate && !class.is_test_file;
    let d2_applies = !class.is_bench_crate && !class.is_telemetry_crate;
    let d4_applies = !class.is_telemetry_crate && !class.is_criterion_crate;
    let d3_applies = !class.is_test_file;
    let f2_applies = !class.is_test_file;
    let p1_applies =
        !class.is_bench_crate && !class.is_test_file && !class.is_binary && !class.is_example;

    for i in 0..toks.len() {
        let t = &toks[i];
        let tested = in_test.get(i).copied().unwrap_or(false);
        let prev_text = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let next = toks.get(i + 1);

        // D1 — deterministic collections in filter/aggregation state.
        if d1_applies
            && !tested
            && t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            let replacement = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            hits.push(RuleHit {
                rule: "D1",
                line: t.line,
                span: (t.start, t.end),
                message: format!(
                    "{} iteration order is nondeterministic; filter verdicts and \
                     aggregation must be reproducible — use {replacement} or a sorted Vec",
                    t.text
                ),
            });
        }

        // D2 — no ambient entropy / wall-clock outside bench + telemetry.
        if d2_applies && t.kind == TokenKind::Ident {
            if t.text == "thread_rng" || t.text == "from_entropy" {
                hits.push(RuleHit {
                    rule: "D2",
                    line: t.line,
                    span: (t.start, t.end),
                    message: format!(
                        "{} draws ambient entropy; derive a seeded StdRng from the run \
                         seed so filter decisions replay bit-identically",
                        t.text
                    ),
                });
            }
            if t.text == "SystemTime"
                && matches!(next, Some(n) if n.text == "::")
                && matches!(toks.get(i + 2), Some(n2) if n2.text == "now")
            {
                hits.push(RuleHit {
                    rule: "D2",
                    line: t.line,
                    span: (t.start, t.end),
                    message: "SystemTime::now makes behaviour depend on wall-clock time; \
                              thread virtual time through instead"
                        .to_string(),
                });
            }
        }

        // D4 — one sanctioned wall clock. Every timing measurement flows
        // through `asyncfl_telemetry::Stopwatch` so span nanos, bench wall
        // clocks and scaling probes all read the same clock, and the audit
        // surface for time-dependence stays a single module. The telemetry
        // crate (which owns the clock) and the criterion shim (a vendored
        // measurement harness) are the only places allowed to touch
        // `Instant` directly.
        if d4_applies
            && t.kind == TokenKind::Ident
            && t.text == "Instant"
            && matches!(next, Some(n) if n.text == "::")
            && matches!(toks.get(i + 2), Some(n2) if n2.text == "now")
        {
            hits.push(RuleHit {
                rule: "D4",
                line: t.line,
                span: (t.start, t.end),
                message: "Instant::now() bypasses the sanctioned wall clock; use \
                          asyncfl_telemetry::Stopwatch so all timing reads one \
                          auditable source"
                    .to_string(),
            });
        }

        // D3 — hermetic build: the runtime dependency graph is first-party
        // only, so paths into the external crates the workspace replaced
        // (`rand`, `crossbeam`, `parking_lot`) must not reappear. The
        // first-party substitutes (`asyncfl_rng`, std `mpsc`/`Mutex`) lex as
        // different idents and never match.
        if d3_applies
            && !tested
            && t.kind == TokenKind::Ident
            && (t.text == "rand" || t.text == "crossbeam" || t.text == "parking_lot")
            && matches!(next, Some(n) if n.text == "::")
        {
            let replacement = match t.text.as_str() {
                "rand" => "asyncfl_rng",
                "crossbeam" => "std::sync::mpsc",
                _ => "std::sync::Mutex/RwLock",
            };
            hits.push(RuleHit {
                rule: "D3",
                line: t.line,
                span: (t.start, t.end),
                message: format!(
                    "{}:: pulls an external crate back into the runtime graph and breaks \
                     the offline build; use {replacement} instead",
                    t.text
                ),
            });
        }

        // F1 — NaN-unsafe float comparisons (applies to test code too: a
        // flaky test comparator is still a reproducibility bug).
        if t.kind == TokenKind::Ident && t.text == "partial_cmp" && prev_text == Some(".") {
            hits.push(RuleHit {
                rule: "F1",
                line: t.line,
                span: (t.start, t.end),
                message: "partial_cmp(..).unwrap()/expect() panics on NaN and poisons sort \
                          order; use f64::total_cmp for a NaN-safe total order"
                    .to_string(),
            });
        }

        // F2 — float equality against nonzero literals / NaN / infinities.
        // Exact-zero tests (`x == 0.0`) are well-defined IEEE sentinel and
        // sparsity checks and stay permitted; see docs/LINTS.md.
        if f2_applies && !tested && t.kind == TokenKind::Op && (t.text == "==" || t.text == "!=") {
            let float_const = |text: &str| {
                text == "NAN" || text == "INFINITY" || text == "NEG_INFINITY" || text == "EPSILON"
            };
            let prev_bad = i.checked_sub(1).is_some_and(|p| {
                let pt = &toks[p];
                (pt.kind == TokenKind::Float && !float_literal_is_zero(&pt.text))
                    || (pt.kind == TokenKind::Ident && float_const(&pt.text))
            });
            // Right-hand side: skip a unary minus, then resolve a path
            // (`f64 :: NAN`) to its final segment.
            let mut j = i + 1;
            if toks
                .get(j)
                .is_some_and(|n| n.kind == TokenKind::Op && n.text == "-")
            {
                j += 1;
            }
            while toks.get(j).is_some_and(|n| n.kind == TokenKind::Ident)
                && toks.get(j + 1).is_some_and(|n| n.text == "::")
            {
                j += 2;
            }
            let rhs = toks.get(j);
            let next_bad = rhs.is_some_and(|nt| {
                (nt.kind == TokenKind::Float && !float_literal_is_zero(&nt.text))
                    || (nt.kind == TokenKind::Ident && float_const(&nt.text))
            });
            if prev_bad || next_bad {
                hits.push(RuleHit {
                    rule: "F2",
                    line: t.line,
                    span: (t.start, t.end),
                    message: format!(
                        "float {} against a nonzero literal is rounding-fragile (and always \
                         false for NaN); compare with an epsilon or use is_nan()/is_infinite()",
                        t.text
                    ),
                });
            }
        }

        // P1 — panic-freedom in library code.
        if p1_applies && !tested && t.kind == TokenKind::Ident {
            if (t.text == "unwrap" || t.text == "expect") && prev_text == Some(".") {
                hits.push(RuleHit {
                    rule: "P1",
                    line: t.line,
                    span: (t.start, t.end),
                    message: format!(
                        ".{}() can abort a long training run mid-flight; return an error, \
                         use unwrap_or/match, or justify with a lint:allow",
                        t.text
                    ),
                });
            }
            if t.text == "panic" && matches!(next, Some(n) if n.text == "!") {
                hits.push(RuleHit {
                    rule: "P1",
                    line: t.line,
                    span: (t.start, t.end),
                    message: "panic! in library code aborts the whole server; return a \
                              Result or justify with a lint:allow"
                        .to_string(),
                });
            }
        }
    }
    hits
}
