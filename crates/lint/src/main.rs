//! CLI for the AsyncFilter workspace invariant linter.
//!
//! ```text
//! asyncfl-lint check [--json] [--root DIR] [PATH...]
//! ```
//!
//! With no `PATH`s, walks `crates/*/src`, `src/`, `tests/` and `examples/`
//! under the workspace root. Exit codes: `0` clean, `1` violations found,
//! `2` usage or I/O error.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("asyncfl-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut explicit_paths: Vec<PathBuf> = Vec::new();
    let mut command: Option<&str> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--json" => json = true,
            "--root" => {
                let dir = iter
                    .next()
                    .ok_or_else(|| "--root requires a directory argument".to_string())?;
                root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                println!("usage: asyncfl-lint check [--json] [--root DIR] [PATH...]");
                return Ok(true);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?} (try --help)"));
            }
            path => explicit_paths.push(PathBuf::from(path)),
        }
    }
    if command != Some("check") {
        return Err("expected the `check` subcommand (try --help)".to_string());
    }

    let explicit_paths_given = !explicit_paths.is_empty();
    let files = if explicit_paths.is_empty() {
        workspace_files(&root)?
    } else {
        let mut files = Vec::new();
        for p in explicit_paths {
            collect_rs_files(&p, &mut files)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        }
        files
    };
    if files.is_empty() {
        return Err(format!(
            "no .rs files found under {} — is this the workspace root? (use --root)",
            root.display()
        ));
    }

    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let source =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        sources.push((relative_label(&root, path), source));
    }
    // X1 contract-drift checks need the workspace docs. Explicit PATH
    // invocations lint arbitrary subsets, so the drift checks (which assume
    // whole-workspace visibility of Event constructions) only arm on full
    // walks; a missing doc file under a full walk is itself drift.
    let docs = if explicit_paths_given {
        asyncfl_lint::WorkspaceDocs::default()
    } else {
        asyncfl_lint::WorkspaceDocs {
            observability: fs::read_to_string(root.join("docs/OBSERVABILITY.md")).ok(),
            lints: fs::read_to_string(root.join("docs/LINTS.md")).ok(),
        }
    };
    let summary =
        asyncfl_lint::check_workspace(sources.iter().map(|(p, s)| (p.as_str(), s.as_str())), &docs);

    if json {
        print!("{}", summary.render_json());
    } else {
        print!("{}", summary.render_human());
    }
    Ok(summary.clean())
}

/// The default lint surface: every crate's `src`, plus the workspace
/// facade's `src/`, integration `tests/` and `examples/`.
fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut files)
                    .map_err(|e| format!("cannot walk {}: {e}", src.display()))?;
            }
        }
    }
    for top in ["src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)
                .map_err(|e| format!("cannot walk {}: {e}", dir.display()))?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively gathers `.rs` files under `path` (or `path` itself).
/// Directories named `fixtures` are skipped: they hold lint-test corpora
/// whose files violate the rules on purpose.
fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    if path.is_dir() && path.file_name().is_some_and(|n| n == "fixtures") {
        return Ok(());
    }
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(path)? {
        let entry = entry?;
        collect_rs_files(&entry.path(), out)?;
    }
    Ok(())
}

/// Renders `path` relative to `root` with `/` separators, for stable,
/// diffable diagnostics across machines.
fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
