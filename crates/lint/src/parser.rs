//! Recursive-descent parser from the token stream to the lint AST.
//!
//! The parser is layered on [`crate::tokenizer`] and produces
//! [`crate::ast`] nodes. It aims for *coverage of this workspace's Rust*,
//! not the full grammar: generics are skipped over (balanced `<…>`), types
//! are captured as normalized text, patterns are summarized to their
//! binding names, and macro bodies are re-parsed as expression lists on a
//! best-effort basis. Anything truly unexpected raises a [`ParseError`]
//! with the offending span; the engine then falls back to the token-scan
//! rules for that file, so a parser gap can never hide a whole file from
//! linting.

use crate::ast::*;
use crate::tokenizer::{Lexed, Token, TokenKind};

/// A fatal parse error for one file.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Where parsing failed.
    pub span: Span,
    /// What the parser expected / saw.
    pub message: String,
}

/// Parses a lexed file into an AST.
///
/// # Errors
///
/// Returns the first unrecoverable syntax error; callers fall back to the
/// token engine.
pub fn parse_file(lexed: &Lexed) -> Result<File, ParseError> {
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
    };
    // Skip any inner attributes / doc comments at file head.
    let items = p.parse_items(false)?;
    Ok(File { items })
}

struct Parser<'t> {
    toks: &'t [Token],
    pos: usize,
}

impl<'t> Parser<'t> {
    // ----- token helpers ---------------------------------------------------

    fn peek(&self) -> Option<&'t Token> {
        self.toks.get(self.pos)
    }

    fn peek_n(&self, n: usize) -> Option<&'t Token> {
        self.toks.get(self.pos + n)
    }

    fn bump(&mut self) -> Option<&'t Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_op(&self, s: &str) -> bool {
        matches!(self.peek(), Some(t) if t.kind == TokenKind::Op && t.text == s)
    }

    fn at_op_n(&self, n: usize, s: &str) -> bool {
        matches!(self.peek_n(n), Some(t) if t.kind == TokenKind::Op && t.text == s)
    }

    fn at_kw(&self, s: &str) -> bool {
        matches!(self.peek(), Some(t) if t.kind == TokenKind::Ident && t.text == s)
    }

    fn at_kw_n(&self, n: usize, s: &str) -> bool {
        matches!(self.peek_n(n), Some(t) if t.kind == TokenKind::Ident && t.text == s)
    }

    fn eat_op(&mut self, s: &str) -> bool {
        if self.at_op(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, s: &str) -> bool {
        if self.at_kw(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, s: &str) -> Result<Span, ParseError> {
        if self.at_op(s) {
            let sp = self.cur_span();
            self.pos += 1;
            Ok(sp)
        } else {
            Err(self.error(format!("expected `{s}`")))
        }
    }

    fn cur_span(&self) -> Span {
        match self.peek() {
            Some(t) => tok_span(t),
            None => self
                .toks
                .last()
                .map(|t| Span {
                    start: t.end,
                    end: t.end,
                    line: t.line,
                })
                .unwrap_or_default(),
        }
    }

    fn prev_span(&self) -> Span {
        self.pos
            .checked_sub(1)
            .and_then(|i| self.toks.get(i))
            .map(tok_span)
            .unwrap_or_default()
    }

    fn error(&self, message: String) -> ParseError {
        let got = match self.peek() {
            Some(t) if t.kind == TokenKind::Str => "string literal".to_string(),
            Some(t) => format!("`{}`", t.text),
            None => "end of file".to_string(),
        };
        ParseError {
            span: self.cur_span(),
            message: format!("{message}, found {got}"),
        }
    }

    /// Consumes one balanced token run starting at an opening delimiter.
    fn skip_balanced(&mut self) -> Result<(), ParseError> {
        let open = match self.peek() {
            Some(t) if t.kind == TokenKind::Op => t.text.as_str(),
            _ => return Err(self.error("expected an opening delimiter".into())),
        };
        let close = match open {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return Err(self.error("expected an opening delimiter".into())),
        };
        let mut depth = 0i64;
        while let Some(t) = self.bump() {
            if t.kind == TokenKind::Op {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                } else {
                    // Other delimiter kinds nest independently.
                    match t.text.as_str() {
                        "(" | "[" | "{" => {
                            self.pos -= 1;
                            self.skip_balanced()?;
                        }
                        _ => {}
                    }
                }
            }
        }
        Err(ParseError {
            span: self.prev_span(),
            message: format!("unclosed `{open}`"),
        })
    }

    /// Skips a generics list starting at `<`, handling `>>` closing two.
    fn skip_angles(&mut self) -> Result<(), ParseError> {
        let mut depth = 0i64;
        loop {
            let Some(t) = self.peek() else {
                return Err(self.error("unclosed `<`".into()));
            };
            match (t.kind, t.text.as_str()) {
                (TokenKind::Op, "<") => depth += 1,
                (TokenKind::Op, "<<") => depth += 2,
                (TokenKind::Op, ">") => depth -= 1,
                (TokenKind::Op, ">>") => depth -= 2,
                (TokenKind::Op, ">=") => depth -= 1,
                (TokenKind::Op, "(" | "[" | "{") => {
                    self.skip_balanced()?;
                    continue;
                }
                (TokenKind::Op, ";") => return Err(self.error("unclosed `<`".into())),
                _ => {}
            }
            self.pos += 1;
            if depth <= 0 {
                return Ok(());
            }
        }
    }

    // ----- attributes ------------------------------------------------------

    /// Parses `#[…]` / `#![…]` attribute runs. Returns (attrs, any-test-gate).
    fn parse_attrs(&mut self) -> Result<(Vec<Attr>, bool), ParseError> {
        let mut attrs = Vec::new();
        let mut gated = false;
        while self.at_op("#") {
            let start = self.cur_span();
            self.pos += 1;
            self.eat_op("!");
            if !self.at_op("[") {
                return Err(self.error("expected `[` after `#`".into()));
            }
            // Scan the attribute body for the test-gate heuristic while
            // consuming it balanced.
            let body_start = self.pos;
            self.skip_balanced()?;
            let mut has_test = false;
            let mut has_not = false;
            for t in &self.toks[body_start..self.pos] {
                if t.kind == TokenKind::Ident {
                    match t.text.as_str() {
                        "test" => has_test = true,
                        "not" => has_not = true,
                        _ => {}
                    }
                }
            }
            let test_gate = has_test && !has_not;
            gated |= test_gate;
            attrs.push(Attr {
                test_gate,
                span: start.to(self.prev_span()),
            });
        }
        Ok((attrs, gated))
    }

    // ----- items -----------------------------------------------------------

    fn parse_items(&mut self, inside_braces: bool) -> Result<Vec<Item>, ParseError> {
        let mut items = Vec::new();
        loop {
            if inside_braces && self.at_op("}") {
                return Ok(items);
            }
            if self.peek().is_none() {
                if inside_braces {
                    return Err(self.error("expected `}`".into()));
                }
                return Ok(items);
            }
            if self.eat_op(";") {
                continue;
            }
            items.push(self.parse_item()?);
        }
    }

    fn parse_item(&mut self) -> Result<Item, ParseError> {
        let start = self.cur_span();
        let (_attrs, test_gated) = self.parse_attrs()?;
        // Visibility.
        if self.eat_kw("pub") && self.at_op("(") {
            self.skip_balanced()?;
        }
        // Leading qualifiers before the defining keyword.
        let mut qualified = true;
        while qualified {
            qualified = false;
            for q in ["default", "async"] {
                if self.at_kw(q) && self.peek_n(1).is_some_and(|t| t.kind == TokenKind::Ident) {
                    self.pos += 1;
                    qualified = true;
                }
            }
            // `unsafe fn` / `unsafe impl` / `unsafe trait` / `unsafe extern`.
            if self.at_kw("unsafe")
                && (self.at_kw_n(1, "fn")
                    || self.at_kw_n(1, "impl")
                    || self.at_kw_n(1, "trait")
                    || self.at_kw_n(1, "extern"))
            {
                self.pos += 1;
                qualified = true;
            }
            // `const fn` (but not `const NAME: …`).
            if self.at_kw("const") && (self.at_kw_n(1, "fn") || self.at_kw_n(1, "unsafe")) {
                self.pos += 1;
                qualified = true;
            }
            // `extern "C" fn`.
            if self.at_kw("extern")
                && self.peek_n(1).is_some_and(|t| t.kind == TokenKind::Str)
                && self.at_kw_n(2, "fn")
            {
                self.pos += 2;
                qualified = true;
            }
        }

        let kind = if self.at_kw("fn") {
            self.parse_fn()?
        } else if self.at_kw("use") {
            self.parse_use()?
        } else if self.at_kw("struct") || self.at_kw("enum") || self.at_kw("union") {
            self.parse_typedef()?
        } else if self.at_kw("type") {
            self.parse_type_alias()?
        } else if self.at_kw("const") || self.at_kw("static") {
            self.parse_const_static()?
        } else if self.at_kw("impl") {
            self.parse_impl()?
        } else if self.at_kw("trait") {
            self.parse_trait()?
        } else if self.at_kw("mod") {
            self.parse_mod()?
        } else if self.at_kw("macro_rules") {
            self.parse_macro_rules()?
        } else if self.at_kw("extern") {
            // `extern crate x;` or an `extern { … }` block.
            self.pos += 1;
            if self.eat_kw("crate") {
                let name = self.expect_ident()?;
                self.eat_kw("as").then(|| self.bump());
                self.expect_op(";")?;
                ItemKind::ExternCrate(name)
            } else {
                if self.peek().is_some_and(|t| t.kind == TokenKind::Str) {
                    self.pos += 1;
                }
                if self.at_op("{") {
                    self.skip_balanced()?;
                }
                ItemKind::Opaque
            }
        } else if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) && self.at_op_n(1, "!") {
            // Item-position macro invocation: `name! { … }` / `name!(…);`.
            let mac = self.parse_macro_call()?;
            self.eat_op(";");
            ItemKind::Macro(mac)
        } else {
            return Err(self.error("expected an item".into()));
        };
        Ok(Item {
            kind,
            test_gated,
            span: start.to(self.prev_span()),
        })
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                self.pos += 1;
                Ok(t.text.clone())
            }
            _ => Err(self.error("expected an identifier".into())),
        }
    }

    fn parse_fn(&mut self) -> Result<ItemKind, ParseError> {
        self.eat_kw("fn");
        let name = self.expect_ident()?;
        if self.at_op("<") {
            self.skip_angles()?;
        }
        self.expect_op("(")?;
        let mut params = Vec::new();
        while !self.at_op(")") {
            if self.peek().is_none() {
                return Err(self.error("unclosed parameter list".into()));
            }
            // Parameter attributes.
            let _ = self.parse_attrs()?;
            // self receivers.
            if self.at_kw("self")
                || (self.at_op("&") && (self.at_kw_n(1, "self") || self.at_kw_n(1, "mut")))
                || (self.at_op("&")
                    && self
                        .peek_n(1)
                        .is_some_and(|t| t.kind == TokenKind::Lifetime))
            {
                // Consume through the receiver (and optional `self: Type`).
                while !self.at_op(",") && !self.at_op(")") {
                    if self.at_op("(") || self.at_op("[") || self.at_op("{") {
                        self.skip_balanced()?;
                    } else if self.at_op("<") {
                        self.skip_angles()?;
                    } else {
                        self.pos += 1;
                    }
                }
                params.push((None, None));
            } else {
                let pat = self.parse_pat_until(&[":", ",", ")"])?;
                let ty = if self.eat_op(":") {
                    Some(self.parse_type_until(&[",", ")"])?)
                } else {
                    None
                };
                params.push((pat.single.clone(), ty));
            }
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        let ret = if self.eat_op("->") {
            Some(self.parse_type_until(&["{", ";", "where"])?)
        } else {
            None
        };
        if self.at_kw("where") {
            self.consume_where_clause()?;
        }
        let body = if self.at_op("{") {
            Some(self.parse_block()?)
        } else {
            self.expect_op(";")?;
            None
        };
        Ok(ItemKind::Fn(FnItem {
            name,
            params,
            ret,
            body,
        }))
    }

    fn consume_where_clause(&mut self) -> Result<(), ParseError> {
        self.eat_kw("where");
        while !self.at_op("{") && !self.at_op(";") {
            if self.peek().is_none() {
                return Err(self.error("unterminated where clause".into()));
            }
            if self.at_op("<") {
                self.skip_angles()?;
            } else if self.at_op("(") || self.at_op("[") {
                self.skip_balanced()?;
            } else {
                self.pos += 1;
            }
        }
        Ok(())
    }

    fn parse_use(&mut self) -> Result<ItemKind, ParseError> {
        self.eat_kw("use");
        let mut entries = Vec::new();
        self.parse_use_tree(&mut Vec::new(), &mut entries)?;
        self.expect_op(";")?;
        Ok(ItemKind::Use(entries))
    }

    fn parse_use_tree(
        &mut self,
        prefix: &mut Vec<String>,
        out: &mut Vec<UseEntry>,
    ) -> Result<(), ParseError> {
        loop {
            if self.at_op("*") {
                let sp = self.cur_span();
                self.pos += 1;
                out.push(UseEntry {
                    path: prefix.clone(),
                    alias: None,
                    span: sp,
                });
                return Ok(());
            }
            if self.at_op("{") {
                self.pos += 1;
                while !self.at_op("}") {
                    let depth_before = prefix.len();
                    self.parse_use_tree(prefix, out)?;
                    prefix.truncate(depth_before);
                    if !self.eat_op(",") {
                        break;
                    }
                }
                self.expect_op("}")?;
                return Ok(());
            }
            let seg_span = self.cur_span();
            let seg = self.expect_ident()?;
            prefix.push(seg);
            if self.eat_op("::") {
                continue;
            }
            let alias = if self.eat_kw("as") {
                Some(self.expect_ident()?)
            } else {
                prefix.last().cloned()
            };
            out.push(UseEntry {
                path: prefix.clone(),
                alias,
                span: seg_span.to(self.prev_span()),
            });
            return Ok(());
        }
    }

    fn parse_typedef(&mut self) -> Result<ItemKind, ParseError> {
        let is_enum = self.at_kw("enum");
        self.pos += 1; // struct / enum / union
        let name = self.expect_ident()?;
        if self.at_op("<") {
            self.skip_angles()?;
        }
        if self.at_kw("where") {
            self.consume_where_clause()?;
        }
        let mut variants = Vec::new();
        if self.at_op("{") {
            if is_enum {
                // Collect variant names: idents at brace depth 1 that start
                // a variant (follow `{` or `,`), skipping their payloads.
                self.pos += 1;
                loop {
                    let _ = self.parse_attrs()?;
                    if self.at_op("}") {
                        break;
                    }
                    let v = self.expect_ident()?;
                    variants.push(v);
                    if self.at_op("(") || self.at_op("{") {
                        self.skip_balanced()?;
                    }
                    if self.eat_op("=") {
                        // Explicit discriminant.
                        while !self.at_op(",") && !self.at_op("}") {
                            self.pos += 1;
                        }
                    }
                    if !self.eat_op(",") {
                        break;
                    }
                }
                self.expect_op("}")?;
            } else {
                self.skip_balanced()?;
            }
        } else if self.at_op("(") {
            self.skip_balanced()?;
            if self.at_kw("where") {
                self.consume_where_clause()?;
            }
            self.expect_op(";")?;
        } else {
            self.expect_op(";")?;
        }
        Ok(ItemKind::TypeDef { name, variants })
    }

    fn parse_type_alias(&mut self) -> Result<ItemKind, ParseError> {
        self.eat_kw("type");
        let name = self.expect_ident()?;
        if self.at_op("<") {
            self.skip_angles()?;
        }
        let ty = if self.eat_op("=") {
            Some(self.parse_type_until(&[";"])?)
        } else {
            None
        };
        self.expect_op(";")?;
        Ok(ItemKind::TypeAlias { name, ty })
    }

    fn parse_const_static(&mut self) -> Result<ItemKind, ParseError> {
        self.pos += 1; // const / static
        self.eat_kw("mut");
        let name = if self.at_op("_") {
            self.pos += 1;
            "_".to_string()
        } else {
            self.expect_ident()?
        };
        let ty = if self.eat_op(":") {
            Some(self.parse_type_until(&["=", ";"])?)
        } else {
            None
        };
        let init = if self.eat_op("=") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect_op(";")?;
        Ok(ItemKind::ConstStatic { name, ty, init })
    }

    fn parse_impl(&mut self) -> Result<ItemKind, ParseError> {
        self.eat_kw("impl");
        if self.at_op("<") {
            self.skip_angles()?;
        }
        self.eat_op("!");
        // First type (trait or self type).
        let first = self.parse_type_until(&["for", "where", "{"])?;
        let mut trait_path = None;
        if self.eat_kw("for") {
            trait_path = path_from_type_text(&first);
            let _self_ty = self.parse_type_until(&["where", "{"])?;
        }
        if self.at_kw("where") {
            self.consume_where_clause()?;
        }
        self.expect_op("{")?;
        let items = self.parse_items(true)?;
        self.expect_op("}")?;
        Ok(ItemKind::Impl { trait_path, items })
    }

    fn parse_trait(&mut self) -> Result<ItemKind, ParseError> {
        self.eat_kw("trait");
        let name = self.expect_ident()?;
        if self.at_op("<") {
            self.skip_angles()?;
        }
        // Supertraits / where clause.
        while !self.at_op("{") {
            if self.peek().is_none() {
                return Err(self.error("unterminated trait header".into()));
            }
            if self.at_op("<") {
                self.skip_angles()?;
            } else if self.at_op("(") || self.at_op("[") {
                self.skip_balanced()?;
            } else {
                self.pos += 1;
            }
        }
        self.expect_op("{")?;
        let items = self.parse_items(true)?;
        self.expect_op("}")?;
        Ok(ItemKind::Trait { name, items })
    }

    fn parse_mod(&mut self) -> Result<ItemKind, ParseError> {
        self.eat_kw("mod");
        let name = self.expect_ident()?;
        if self.eat_op(";") {
            return Ok(ItemKind::Mod { name, items: None });
        }
        self.expect_op("{")?;
        let items = self.parse_items(true)?;
        self.expect_op("}")?;
        Ok(ItemKind::Mod {
            name,
            items: Some(items),
        })
    }

    fn parse_macro_rules(&mut self) -> Result<ItemKind, ParseError> {
        let start = self.cur_span();
        self.eat_kw("macro_rules");
        self.expect_op("!")?;
        let name = self.expect_ident()?;
        if !self.at_op("{") && !self.at_op("(") && !self.at_op("[") {
            return Err(self.error("expected a macro_rules body".into()));
        }
        self.skip_balanced()?;
        Ok(ItemKind::Macro(MacroCall {
            path: Path {
                segments: vec!["macro_rules".into(), name],
                span: start,
            },
            args: Vec::new(),
            span: start.to(self.prev_span()),
        }))
    }

    // ----- types -----------------------------------------------------------

    /// Consumes type tokens until one of `stops` appears at delimiter depth
    /// zero, collecting normalized text.
    fn parse_type_until(&mut self, stops: &[&str]) -> Result<TypeRef, ParseError> {
        let start = self.cur_span();
        let mut text = String::new();
        let mut angle = 0i64;
        while let Some(t) = self.peek() {
            let is_stop = angle == 0
                && stops.iter().any(|s| {
                    t.text == *s
                        && (t.kind == TokenKind::Op
                            || (t.kind == TokenKind::Ident && (*s == "where" || *s == "for")))
                });
            if is_stop {
                break;
            }
            match (t.kind, t.text.as_str()) {
                (TokenKind::Op, "<") => angle += 1,
                (TokenKind::Op, "<<") => angle += 2,
                (TokenKind::Op, ">") => angle -= 1,
                (TokenKind::Op, ">>") => angle -= 2,
                (TokenKind::Op, "(" | "[") => {
                    let from = self.pos;
                    self.skip_balanced()?;
                    for tt in &self.toks[from..self.pos] {
                        push_type_text(&mut text, tt);
                    }
                    continue;
                }
                (TokenKind::Op, "{") => {
                    // Const-generic block or the body we must not eat.
                    if angle > 0 {
                        let from = self.pos;
                        self.skip_balanced()?;
                        for tt in &self.toks[from..self.pos] {
                            push_type_text(&mut text, tt);
                        }
                        continue;
                    }
                    break;
                }
                (TokenKind::Op, ";" | "}" | ",") if angle == 0 => break,
                _ => {}
            }
            push_type_text(&mut text, t);
            self.pos += 1;
        }
        if text.is_empty() {
            return Err(self.error("expected a type".into()));
        }
        Ok(TypeRef {
            text,
            span: start.to(self.prev_span()),
        })
    }

    // ----- patterns --------------------------------------------------------

    /// Consumes pattern tokens until a stop token at depth zero; extracts
    /// binding names heuristically (lowercase identifiers in binding
    /// position — Rust's naming convention makes this reliable in
    /// practice).
    fn parse_pat_until(&mut self, stops: &[&str]) -> Result<PatSummary, ParseError> {
        let start_pos = self.pos;
        let start = self.cur_span();
        while let Some(t) = self.peek() {
            if t.kind == TokenKind::Op && stops.contains(&t.text.as_str()) {
                break;
            }
            if t.kind == TokenKind::Ident && stops.contains(&t.text.as_str()) {
                break;
            }
            match (t.kind, t.text.as_str()) {
                (TokenKind::Op, "(" | "[" | "{") => {
                    self.skip_balanced()?;
                    continue;
                }
                (TokenKind::Op, ")" | "]" | "}") => break,
                (TokenKind::Op, "<") => {
                    self.skip_angles()?;
                    continue;
                }
                _ => {}
            }
            self.pos += 1;
        }
        let toks = &self.toks[start_pos..self.pos];
        let mut bindings = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let name = t.text.as_str();
            if matches!(name, "mut" | "ref" | "box" | "_") {
                continue;
            }
            // Convention: binding names are lower_snake_case; paths/variants
            // and struct names are capitalized.
            if !name.starts_with(|c: char| c.is_lowercase() || c == '_') {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            if prev == Some("::") || next == Some("::") {
                continue;
            }
            // `field: pat` — the field name is not a binding.
            if next == Some(":") {
                continue;
            }
            bindings.push(t.text.clone());
        }
        let plain: Vec<&Token> = toks
            .iter()
            .filter(|t| !(t.kind == TokenKind::Ident && matches!(t.text.as_str(), "mut" | "ref")))
            .collect();
        let single = if plain.len() == 1 && plain[0].kind == TokenKind::Ident {
            Some(plain[0].text.clone())
        } else {
            None
        };
        Ok(PatSummary {
            bindings,
            single,
            span: start.to(self.prev_span()),
        })
    }

    // ----- blocks & statements --------------------------------------------

    fn parse_block(&mut self) -> Result<Block, ParseError> {
        let start = self.expect_op("{")?;
        let mut stmts = Vec::new();
        loop {
            if self.at_op("}") {
                break;
            }
            if self.peek().is_none() {
                return Err(self.error("unclosed block".into()));
            }
            if self.eat_op(";") {
                continue;
            }
            stmts.push(self.parse_stmt()?);
        }
        let end = self.expect_op("}")?;
        Ok(Block {
            stmts,
            span: start.to(end),
        })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Attributes may precede statements and nested items alike; look
        // past them to decide what this is.
        let save = self.pos;
        let (_attrs, _gated) = self.parse_attrs()?;
        if self.at_kw("let") {
            return self.parse_let_stmt();
        }
        if self.is_item_start() {
            self.pos = save;
            let item = self.parse_item()?;
            return Ok(Stmt::Item(Box::new(item)));
        }
        // Expression statement. Block-like expressions terminate without a
        // `;` (Rust statement grammar) and take no postfix or infix
        // continuation: `for … {}` followed by `[a, b]` starts a new
        // array-literal statement, not an index into the loop. Others
        // continue as full expressions.
        if self.at_block_like_expr() {
            let expr = self.parse_prefix(true)?;
            let semi = self.eat_op(";");
            return Ok(Stmt::Expr { expr, semi });
        }
        let expr = self.parse_expr()?;
        let semi = self.eat_op(";");
        Ok(Stmt::Expr { expr, semi })
    }

    /// Whether the cursor sits at a block-like expression: `if`, `match`,
    /// `while`, `loop`, `for`, a bare block, `unsafe { … }`, `const { … }`,
    /// optionally behind a loop label. Item-position keywords (`unsafe fn`,
    /// `const NAME`) are already diverted by `is_item_start` before this is
    /// consulted in `parse_stmt`.
    fn at_block_like_expr(&self) -> bool {
        let mut n = 0;
        if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) && self.at_op_n(1, ":") {
            n = 2;
        }
        let Some(t) = self.peek_n(n) else {
            return false;
        };
        match (t.kind, t.text.as_str()) {
            (TokenKind::Op, "{") => true,
            (TokenKind::Ident, "if" | "match" | "while" | "loop" | "for") => true,
            (TokenKind::Ident, "unsafe" | "const") => self.at_op_n(n + 1, "{"),
            _ => false,
        }
    }

    /// Whether the cursor sits at an item declaration (inside a block).
    fn is_item_start(&self) -> bool {
        let Some(t) = self.peek() else {
            return false;
        };
        if t.kind != TokenKind::Ident {
            return false;
        }
        match t.text.as_str() {
            "fn" | "struct" | "enum" | "trait" | "impl" | "mod" | "use" | "static"
            | "macro_rules" => true,
            "union" => self.peek_n(1).is_some_and(|n| n.kind == TokenKind::Ident),
            "type" => self.peek_n(1).is_some_and(|n| n.kind == TokenKind::Ident),
            // `const NAME`/`const fn` are items; `const { … }` is a block
            // expression.
            "const" => !self.at_op_n(1, "{"),
            "unsafe" => {
                self.at_kw_n(1, "fn") || self.at_kw_n(1, "impl") || self.at_kw_n(1, "trait")
            }
            "async" => self.at_kw_n(1, "fn"),
            "extern" => {
                self.at_kw_n(1, "crate") || self.peek_n(1).is_some_and(|n| n.kind == TokenKind::Str)
            }
            "pub" => true,
            _ => false,
        }
    }

    fn parse_let_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.cur_span();
        self.eat_kw("let");
        let pat = self.parse_pat_until(&[":", "=", ";", "else"])?;
        let ty = if self.eat_op(":") {
            Some(self.parse_type_until(&["=", ";", "else"])?)
        } else {
            None
        };
        let init = if self.eat_op("=") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let els = if self.eat_kw("else") {
            Some(self.parse_block()?)
        } else {
            None
        };
        self.expect_op(";")?;
        Ok(Stmt::Let {
            pat,
            ty,
            init,
            els,
            span: start.to(self.prev_span()),
        })
    }

    // ----- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_expr_bp(0, true)
    }

    fn parse_expr_no_struct(&mut self) -> Result<Expr, ParseError> {
        self.parse_expr_bp(0, false)
    }

    /// Pratt parser. `min_bp` is the minimum binding power; `structs`
    /// controls whether `Path { … }` literals are allowed (disabled in
    /// conditions and match scrutinees).
    fn parse_expr_bp(&mut self, min_bp: u8, structs: bool) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_prefix(structs)?;
        while let Some(t) = self.peek() {
            if t.kind != TokenKind::Op && !(t.kind == TokenKind::Ident && t.text == "as") {
                break;
            }
            let op = t.text.as_str();
            // Postfix operators bind tightest.
            match op {
                "." => {
                    lhs = self.parse_postfix_dot(lhs)?;
                    continue;
                }
                "?" => {
                    self.pos += 1;
                    let span = lhs.span.to(self.prev_span());
                    lhs = Expr {
                        kind: ExprKind::Try(Box::new(lhs)),
                        span,
                    };
                    continue;
                }
                "(" => {
                    let args = self.parse_call_args()?;
                    let span = lhs.span.to(self.prev_span());
                    lhs = Expr {
                        kind: ExprKind::Call {
                            callee: Box::new(lhs),
                            args,
                        },
                        span,
                    };
                    continue;
                }
                "[" => {
                    self.pos += 1;
                    let index = self.parse_expr()?;
                    self.expect_op("]")?;
                    let span = lhs.span.to(self.prev_span());
                    let is_range = matches!(index.kind, ExprKind::Range { .. });
                    lhs = Expr {
                        kind: ExprKind::Index {
                            recv: Box::new(lhs),
                            index: Box::new(index),
                            is_range,
                        },
                        span,
                    };
                    continue;
                }
                "as" => {
                    self.pos += 1;
                    // `<` is deliberately not a stop: `x as Arc<dyn Sink>`
                    // opens generics. A bare comparison after a cast
                    // (`a as usize < b`) must be parenthesized — rustfmt's
                    // style in this workspace already guarantees that.
                    let ty = self.parse_type_until(&[
                        ")", "]", "}", ",", ";", "?", ".", "==", "!=", "<=", ">=", "&&", "||", "+",
                        "-", "*", "/", "%", "=", ">", "..", "..=", "as",
                    ])?;
                    let span = lhs.span.to(self.prev_span());
                    lhs = Expr {
                        kind: ExprKind::Cast {
                            expr: Box::new(lhs),
                            ty,
                        },
                        span,
                    };
                    continue;
                }
                _ => {}
            }
            let Some((l_bp, r_bp, assoc_right)) = infix_binding_power(op) else {
                break;
            };
            if l_bp < min_bp {
                break;
            }
            let op_span = self.cur_span();
            let op_text = op.to_string();
            self.pos += 1;
            // Open ranges: `a..` with no RHS.
            if (op_text == ".." || op_text == "..=") && !self.starts_expr() {
                let span = lhs.span.to(op_span);
                lhs = Expr {
                    kind: ExprKind::Range {
                        lo: Some(Box::new(lhs)),
                        hi: None,
                    },
                    span,
                };
                continue;
            }
            let rhs = self.parse_expr_bp(if assoc_right { r_bp - 1 } else { r_bp }, structs)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: match op_text.as_str() {
                    "=" => ExprKind::Assign {
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => {
                        ExprKind::AssignOp {
                            op_text,
                            op_span,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        }
                    }
                    ".." | "..=" => ExprKind::Range {
                        lo: Some(Box::new(lhs)),
                        hi: Some(Box::new(rhs)),
                    },
                    _ => ExprKind::Binary {
                        op: match op_text.as_str() {
                            "==" => BinOp::Eq,
                            "!=" => BinOp::Ne,
                            "+" => BinOp::Add,
                            _ => BinOp::Other,
                        },
                        op_text,
                        op_span,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                },
                span,
            };
        }
        Ok(lhs)
    }

    /// Whether the current token can start an expression (used to detect
    /// open-ended ranges).
    fn starts_expr(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match t.kind {
                TokenKind::Ident => !matches!(t.text.as_str(), "else"),
                TokenKind::Int | TokenKind::Float | TokenKind::Str | TokenKind::Char => true,
                TokenKind::Lifetime => true,
                TokenKind::Op => matches!(
                    t.text.as_str(),
                    "(" | "[" | "{" | "&" | "&&" | "*" | "-" | "!" | "|" | "||" | ".." | "..="
                ),
            },
        }
    }

    fn parse_postfix_dot(&mut self, recv: Expr) -> Result<Expr, ParseError> {
        self.expect_op(".")?;
        // `.await`
        if self.eat_kw("await") {
            let span = recv.span.to(self.prev_span());
            return Ok(Expr {
                kind: ExprKind::Await(Box::new(recv)),
                span,
            });
        }
        // Tuple field `.0`.
        if self.peek().is_some_and(|t| t.kind == TokenKind::Int) {
            self.pos += 1;
            let span = recv.span.to(self.prev_span());
            return Ok(Expr {
                kind: ExprKind::Field(Box::new(recv)),
                span,
            });
        }
        let name_span = self.cur_span();
        let name = self.expect_ident()?;
        // Turbofish?
        let mut turbofish = Vec::new();
        if self.at_op("::") && self.at_op_n(1, "<") {
            self.pos += 2;
            // Collect top-level type arguments as text.
            let mut depth = 1i64;
            let mut cur = String::new();
            while depth > 0 {
                let Some(t) = self.peek() else {
                    return Err(self.error("unclosed turbofish".into()));
                };
                match (t.kind, t.text.as_str()) {
                    (TokenKind::Op, "<") => depth += 1,
                    (TokenKind::Op, "<<") => depth += 2,
                    (TokenKind::Op, ">") => depth -= 1,
                    (TokenKind::Op, ">>") => depth -= 2,
                    (TokenKind::Op, ",") if depth == 1 => {
                        turbofish.push(std::mem::take(&mut cur));
                        self.pos += 1;
                        continue;
                    }
                    _ => {}
                }
                if depth > 0 {
                    push_type_text(&mut cur, t);
                }
                self.pos += 1;
            }
            if !cur.is_empty() {
                turbofish.push(cur);
            }
        }
        if self.at_op("(") {
            let args = self.parse_call_args()?;
            let span = recv.span.to(self.prev_span());
            Ok(Expr {
                kind: ExprKind::MethodCall {
                    recv: Box::new(recv),
                    name,
                    name_span,
                    turbofish,
                    args,
                },
                span,
            })
        } else {
            let span = recv.span.to(name_span);
            Ok(Expr {
                kind: ExprKind::Field(Box::new(recv)),
                span,
            })
        }
    }

    fn parse_call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_op("(")?;
        let mut args = Vec::new();
        while !self.at_op(")") {
            if self.peek().is_none() {
                return Err(self.error("unclosed call".into()));
            }
            args.push(self.parse_expr()?);
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        Ok(args)
    }

    fn parse_prefix(&mut self, structs: bool) -> Result<Expr, ParseError> {
        let Some(t) = self.peek() else {
            return Err(self.error("expected an expression".into()));
        };
        let start = self.cur_span();
        // Loop labels: `'a: loop { … }`.
        if t.kind == TokenKind::Lifetime && self.at_op_n(1, ":") {
            self.pos += 2;
            return self.parse_prefix(structs);
        }
        match (t.kind, t.text.as_str()) {
            (TokenKind::Int, _) => {
                self.pos += 1;
                Ok(Expr {
                    kind: ExprKind::Lit(Lit::Int(t.text.clone())),
                    span: start,
                })
            }
            (TokenKind::Float, _) => {
                self.pos += 1;
                Ok(Expr {
                    kind: ExprKind::Lit(Lit::Float(t.text.clone())),
                    span: start,
                })
            }
            (TokenKind::Str | TokenKind::Char, _) => {
                self.pos += 1;
                Ok(Expr {
                    kind: ExprKind::Lit(Lit::Other),
                    span: start,
                })
            }
            (TokenKind::Ident, "true" | "false") => {
                self.pos += 1;
                Ok(Expr {
                    kind: ExprKind::Lit(Lit::Bool(t.text == "true")),
                    span: start,
                })
            }
            (TokenKind::Op, "-" | "!") => {
                self.pos += 1;
                let inner = self.parse_expr_bp(PREFIX_BP, structs)?;
                let span = start.to(inner.span);
                Ok(Expr {
                    kind: ExprKind::Unary(Box::new(inner)),
                    span,
                })
            }
            (TokenKind::Op, "*") => {
                self.pos += 1;
                let inner = self.parse_expr_bp(PREFIX_BP, structs)?;
                let span = start.to(inner.span);
                Ok(Expr {
                    kind: ExprKind::Unary(Box::new(inner)),
                    span,
                })
            }
            (TokenKind::Op, "&" | "&&") => {
                let double = t.text == "&&";
                self.pos += 1;
                self.eat_kw("mut");
                let inner = self.parse_expr_bp(PREFIX_BP, structs)?;
                let span = start.to(inner.span);
                let once = Expr {
                    kind: ExprKind::Ref(Box::new(inner)),
                    span,
                };
                Ok(if double {
                    Expr {
                        kind: ExprKind::Ref(Box::new(once)),
                        span,
                    }
                } else {
                    once
                })
            }
            (TokenKind::Op, ".." | "..=") => {
                self.pos += 1;
                let hi = if self.starts_expr() {
                    Some(Box::new(self.parse_expr_bp(RANGE_RHS_BP, structs)?))
                } else {
                    None
                };
                let span = start.to(self.prev_span());
                Ok(Expr {
                    kind: ExprKind::Range { lo: None, hi },
                    span,
                })
            }
            (TokenKind::Op, "(") => {
                self.pos += 1;
                let mut elems = Vec::new();
                let mut trailing_comma = false;
                while !self.at_op(")") {
                    if self.peek().is_none() {
                        return Err(self.error("unclosed parenthesis".into()));
                    }
                    elems.push(self.parse_expr()?);
                    trailing_comma = self.eat_op(",");
                    if !trailing_comma {
                        break;
                    }
                }
                self.expect_op(")")?;
                let span = start.to(self.prev_span());
                if elems.len() == 1 && !trailing_comma {
                    // Parenthesized expression: keep the inner node but
                    // widen its span to include the parens.
                    let mut inner = elems.pop().unwrap_or(Expr {
                        kind: ExprKind::Opaque,
                        span,
                    });
                    inner.span = span;
                    Ok(inner)
                } else {
                    Ok(Expr {
                        kind: ExprKind::Tuple(elems),
                        span,
                    })
                }
            }
            (TokenKind::Op, "[") => {
                self.pos += 1;
                let mut elems = Vec::new();
                let mut repeat_len = None;
                while !self.at_op("]") {
                    if self.peek().is_none() {
                        return Err(self.error("unclosed array literal".into()));
                    }
                    let e = self.parse_expr()?;
                    if elems.is_empty() && self.eat_op(";") {
                        repeat_len = Some(self.parse_expr()?);
                        elems.push(e);
                        break;
                    }
                    elems.push(e);
                    if !self.eat_op(",") {
                        break;
                    }
                }
                self.expect_op("]")?;
                let span = start.to(self.prev_span());
                match repeat_len {
                    Some(len) => {
                        let elem = elems.pop().unwrap_or(Expr {
                            kind: ExprKind::Opaque,
                            span,
                        });
                        Ok(Expr {
                            kind: ExprKind::Repeat {
                                elem: Box::new(elem),
                                len: Box::new(len),
                            },
                            span,
                        })
                    }
                    None => Ok(Expr {
                        kind: ExprKind::Array(elems),
                        span,
                    }),
                }
            }
            (TokenKind::Op, "{") => {
                let block = self.parse_block()?;
                let span = block.span;
                Ok(Expr {
                    kind: ExprKind::Block(block),
                    span,
                })
            }
            (TokenKind::Op, "|" | "||") => self.parse_closure(start),
            (TokenKind::Ident, "move") => {
                self.pos += 1;
                self.parse_closure(start)
            }
            (TokenKind::Ident, "if") => self.parse_if(start),
            (TokenKind::Ident, "while") => {
                self.pos += 1;
                let cond = self.parse_condition()?;
                let body = self.parse_block()?;
                let span = start.to(self.prev_span());
                Ok(Expr {
                    kind: ExprKind::While {
                        cond: Box::new(cond),
                        body,
                    },
                    span,
                })
            }
            (TokenKind::Ident, "loop") => {
                self.pos += 1;
                let body = self.parse_block()?;
                let span = start.to(self.prev_span());
                Ok(Expr {
                    kind: ExprKind::Loop(body),
                    span,
                })
            }
            (TokenKind::Ident, "for") => {
                self.pos += 1;
                let pat = self.parse_pat_until(&["in"])?;
                if !self.eat_kw("in") {
                    return Err(self.error("expected `in` in for loop".into()));
                }
                let iter = self.parse_expr_no_struct()?;
                let body = self.parse_block()?;
                let span = start.to(self.prev_span());
                Ok(Expr {
                    kind: ExprKind::For {
                        pat,
                        iter: Box::new(iter),
                        body,
                    },
                    span,
                })
            }
            (TokenKind::Ident, "match") => {
                self.pos += 1;
                let scrutinee = self.parse_expr_no_struct()?;
                self.expect_op("{")?;
                let mut arms = Vec::new();
                while !self.at_op("}") {
                    if self.peek().is_none() {
                        return Err(self.error("unclosed match".into()));
                    }
                    let _ = self.parse_attrs()?;
                    self.eat_op("|");
                    let pat = self.parse_pat_until(&["=>", "if"])?;
                    let guard = if self.eat_kw("if") {
                        Some(self.parse_expr_no_struct()?)
                    } else {
                        None
                    };
                    self.expect_op("=>")?;
                    let body = self.parse_expr()?;
                    self.eat_op(",");
                    arms.push((pat, guard, body));
                }
                self.expect_op("}")?;
                let span = start.to(self.prev_span());
                Ok(Expr {
                    kind: ExprKind::Match {
                        scrutinee: Box::new(scrutinee),
                        arms,
                    },
                    span,
                })
            }
            (TokenKind::Ident, "unsafe") => {
                self.pos += 1;
                let block = self.parse_block()?;
                let span = start.to(self.prev_span());
                Ok(Expr {
                    kind: ExprKind::Block(block),
                    span,
                })
            }
            (TokenKind::Ident, "return" | "break") => {
                self.pos += 1;
                // `break 'label` labels.
                if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.pos += 1;
                }
                let value = if self.starts_expr() && !self.at_op("}") {
                    Some(Box::new(self.parse_expr_bp(0, structs)?))
                } else {
                    None
                };
                let span = start.to(self.prev_span());
                Ok(Expr {
                    kind: ExprKind::Jump(value),
                    span,
                })
            }
            (TokenKind::Ident, "continue") => {
                self.pos += 1;
                if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.pos += 1;
                }
                Ok(Expr {
                    kind: ExprKind::Jump(None),
                    span: start.to(self.prev_span()),
                })
            }
            (TokenKind::Ident, "const") if self.at_op_n(1, "{") => {
                self.pos += 1;
                let block = self.parse_block()?;
                let span = start.to(self.prev_span());
                Ok(Expr {
                    kind: ExprKind::Block(block),
                    span,
                })
            }
            (TokenKind::Ident, "let") => {
                // let-expression inside a condition (`if let`, let chains).
                self.pos += 1;
                let pat = self.parse_pat_until(&["="])?;
                self.expect_op("=")?;
                // The scrutinee cannot contain a top-level `&&`/`||`.
                let scrutinee = self.parse_expr_bp(LET_SCRUTINEE_BP, false)?;
                let span = start.to(self.prev_span());
                Ok(Expr {
                    kind: ExprKind::If {
                        cond: Box::new(scrutinee),
                        pat: Some(pat),
                        then: Block {
                            stmts: Vec::new(),
                            span,
                        },
                        else_: None,
                    },
                    span,
                })
            }
            (TokenKind::Ident, _) => self.parse_path_expr(structs),
            (TokenKind::Lifetime, _) => {
                self.pos += 1;
                Ok(Expr {
                    kind: ExprKind::Opaque,
                    span: start,
                })
            }
            (TokenKind::Op, _) => Err(self.error("expected an expression".into())),
        }
    }

    fn parse_closure(&mut self, start: Span) -> Result<Expr, ParseError> {
        let mut params = PatSummary::default();
        if self.eat_op("||") {
            // No parameters.
        } else {
            self.expect_op("|")?;
            let mut bindings = Vec::new();
            while !self.at_op("|") {
                if self.peek().is_none() {
                    return Err(self.error("unclosed closure parameter list".into()));
                }
                let pat = self.parse_pat_until(&[":", ",", "|"])?;
                bindings.extend(pat.bindings);
                if self.eat_op(":") {
                    let _ = self.parse_type_until(&[",", "|"])?;
                }
                if !self.eat_op(",") {
                    break;
                }
            }
            self.expect_op("|")?;
            params.bindings = bindings;
        }
        let body = if self.eat_op("->") {
            let _ = self.parse_type_until(&["{"])?;
            let block = self.parse_block()?;
            let span = block.span;
            Expr {
                kind: ExprKind::Block(block),
                span,
            }
        } else {
            self.parse_expr_bp(CLOSURE_BODY_BP, true)?
        };
        let span = start.to(body.span);
        Ok(Expr {
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
            span,
        })
    }

    fn parse_if(&mut self, start: Span) -> Result<Expr, ParseError> {
        self.eat_kw("if");
        let cond = self.parse_condition()?;
        let then = self.parse_block()?;
        let else_ = if self.eat_kw("else") {
            if self.at_kw("if") {
                let s = self.cur_span();
                Some(Box::new(self.parse_if(s)?))
            } else {
                let block = self.parse_block()?;
                let span = block.span;
                Some(Box::new(Expr {
                    kind: ExprKind::Block(block),
                    span,
                }))
            }
        } else {
            None
        };
        // Hoist an `if let` pattern out of the condition when the condition
        // is a bare let-expression.
        let (cond, pat) = match cond {
            Expr {
                kind:
                    ExprKind::If {
                        cond: inner,
                        pat: Some(p),
                        then: empty,
                        else_: None,
                    },
                ..
            } if empty.stmts.is_empty() => (*inner, Some(p)),
            other => (other, None),
        };
        let span = start.to(self.prev_span());
        Ok(Expr {
            kind: ExprKind::If {
                cond: Box::new(cond),
                pat,
                then,
                else_,
            },
            span,
        })
    }

    fn parse_condition(&mut self) -> Result<Expr, ParseError> {
        self.parse_expr_no_struct()
    }

    fn parse_path_expr(&mut self, structs: bool) -> Result<Expr, ParseError> {
        let start = self.cur_span();
        let mut segments = vec![self.expect_ident()?];
        loop {
            if self.at_op("::") {
                // Turbofish in path position: `Vec::<f64>::new`.
                if self.at_op_n(1, "<") {
                    self.pos += 1;
                    self.skip_angles()?;
                    if !self.at_op("::") {
                        break;
                    }
                    continue;
                }
                if self.peek_n(1).is_some_and(|t| t.kind == TokenKind::Ident) {
                    self.pos += 1;
                    segments.push(self.expect_ident()?);
                    continue;
                }
                if self.at_op_n(1, "{") {
                    // `path::{…}` only occurs in use trees; treat as error.
                    return Err(self.error("unexpected `::{` in expression".into()));
                }
                break;
            }
            break;
        }
        let path = Path {
            segments,
            span: start.to(self.prev_span()),
        };
        // Macro invocation?
        if self.at_op("!") && (self.at_op_n(1, "(") || self.at_op_n(1, "[") || self.at_op_n(1, "{"))
        {
            let mac = self.parse_macro_body(path)?;
            let span = mac.span;
            return Ok(Expr {
                kind: ExprKind::Macro(mac),
                span,
            });
        }
        // Struct literal?
        if structs && self.at_op("{") && !path.segments.is_empty() {
            // Only treat as a struct literal when the path looks like a
            // type (last segment capitalized) — `loop { }` style keywords
            // never reach here, but `x { }` would otherwise misparse.
            let last = path.last();
            if last.starts_with(char::is_uppercase) {
                return self.parse_struct_literal(path);
            }
        }
        let span = path.span;
        Ok(Expr {
            kind: ExprKind::Path(path),
            span,
        })
    }

    fn parse_struct_literal(&mut self, path: Path) -> Result<Expr, ParseError> {
        let start = path.span;
        self.expect_op("{")?;
        let mut fields = Vec::new();
        let mut rest = None;
        while !self.at_op("}") {
            if self.peek().is_none() {
                return Err(self.error("unclosed struct literal".into()));
            }
            if self.eat_op("..") {
                rest = Some(Box::new(self.parse_expr()?));
                break;
            }
            // Numeric field (tuple-struct update syntax) or named field.
            let name = match self.peek() {
                Some(t) if t.kind == TokenKind::Ident => {
                    self.pos += 1;
                    t.text.clone()
                }
                Some(t) if t.kind == TokenKind::Int => {
                    self.pos += 1;
                    t.text.clone()
                }
                _ => return Err(self.error("expected a field name".into())),
            };
            let value = if self.eat_op(":") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            fields.push((name, value));
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op("}")?;
        let span = start.to(self.prev_span());
        Ok(Expr {
            kind: ExprKind::Struct { path, fields, rest },
            span,
        })
    }

    fn parse_macro_call(&mut self) -> Result<MacroCall, ParseError> {
        let start = self.cur_span();
        let mut segments = vec![self.expect_ident()?];
        while self.at_op("::") && self.peek_n(1).is_some_and(|t| t.kind == TokenKind::Ident) {
            self.pos += 1;
            segments.push(self.expect_ident()?);
        }
        let path = Path {
            segments,
            span: start.to(self.prev_span()),
        };
        self.parse_macro_body(path)
    }

    /// Parses `!` + delimited body of a macro whose path is already
    /// consumed. Arguments are re-parsed as comma-separated expressions
    /// with per-argument recovery: an argument that is not an expression
    /// (a pattern arm, a token-tree fragment) is skipped to the next
    /// top-level comma.
    fn parse_macro_body(&mut self, path: Path) -> Result<MacroCall, ParseError> {
        self.expect_op("!")?;
        let (open, close) = match self.peek() {
            Some(t) if t.kind == TokenKind::Op && t.text == "(" => ("(", ")"),
            Some(t) if t.kind == TokenKind::Op && t.text == "[" => ("[", "]"),
            Some(t) if t.kind == TokenKind::Op && t.text == "{" => ("{", "}"),
            _ => return Err(self.error("expected a macro body".into())),
        };
        // Record the body's token range by consuming it balanced, then
        // re-parse inside.
        let body_open = self.pos;
        self.skip_balanced()?;
        let body_end = self.pos; // one past close delimiter
        let end_span = self.prev_span();
        let inner_start = body_open + 1;
        let inner_end = body_end - 1;
        let mut args = Vec::new();
        let mut sub = Parser {
            toks: &self.toks[..inner_end],
            pos: inner_start,
        };
        let _ = open;
        let _ = close;
        while sub.pos < inner_end {
            let arg_start = sub.pos;
            match sub.parse_expr() {
                Ok(expr) if sub.pos >= inner_end || sub.at_op(",") => {
                    args.push(expr);
                    sub.eat_op(",");
                }
                _ => {
                    // Recovery: skip this argument to the next top-level
                    // comma.
                    sub.pos = arg_start;
                    let mut ok = true;
                    while sub.pos < inner_end {
                        if sub.at_op(",") {
                            sub.pos += 1;
                            break;
                        }
                        if sub.at_op("(") || sub.at_op("[") || sub.at_op("{") {
                            if sub.skip_balanced().is_err() {
                                ok = false;
                                break;
                            }
                        } else {
                            sub.pos += 1;
                        }
                    }
                    if !ok {
                        break;
                    }
                }
            }
        }
        let span = path.span.to(end_span);
        Ok(MacroCall { path, args, span })
    }
}

/// The span of one token.
fn tok_span(t: &Token) -> Span {
    Span {
        start: t.start,
        end: t.end,
        line: t.line,
    }
}

/// Binding powers for infix operators: `(left, right, right-assoc)`.
fn infix_binding_power(op: &str) -> Option<(u8, u8, bool)> {
    Some(match op {
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => (2, 3, true),
        ".." | "..=" => (4, 5, false),
        "||" => (6, 7, false),
        "&&" => (8, 9, false),
        "==" | "!=" | "<" | ">" | "<=" | ">=" => (10, 11, false),
        "|" => (12, 13, false),
        "^" => (14, 15, false),
        "&" => (16, 17, false),
        "<<" | ">>" => (18, 19, false),
        "+" | "-" => (20, 21, false),
        "*" | "/" | "%" => (22, 23, false),
        _ => return None,
    })
}

/// Binding power for unary prefix operators (binds tighter than any infix).
const PREFIX_BP: u8 = 24;
/// Closure bodies swallow everything up to (not including) assignment.
const CLOSURE_BODY_BP: u8 = 2;
/// A `let` scrutinee must not swallow a chaining `&&`.
const LET_SCRUTINEE_BP: u8 = 9;
/// RHS of a leading range `..x`.
const RANGE_RHS_BP: u8 = 6;

/// Appends one token to a normalized type text.
fn push_type_text(out: &mut String, t: &Token) {
    let text: &str = match t.kind {
        TokenKind::Str => "\"…\"",
        _ => &t.text,
    };
    let need_space = !out.is_empty()
        && out
            .chars()
            .last()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        && text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    if need_space {
        out.push(' ');
    }
    out.push_str(text);
}

/// Extracts a plain path from rendered type text (`asyncfl_core::Filter`
/// → segments), when the text is just a path.
fn path_from_type_text(ty: &TypeRef) -> Option<Path> {
    let base = ty.text.split('<').next().unwrap_or("");
    if base.is_empty()
        || !base
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == ':')
    {
        return None;
    }
    let segments: Vec<String> = base
        .split("::")
        .map(str::to_string)
        .filter(|s| !s.is_empty())
        .collect();
    if segments.is_empty() {
        return None;
    }
    Some(Path {
        segments,
        span: ty.span,
    })
}
