//! `asyncfl-lint` — the AsyncFilter workspace invariant linter.
//!
//! Stock `clippy -D warnings` already gates CI, but it cannot express the
//! invariants this reproduction actually depends on: AsyncFilter's verdicts
//! hinge on floating-point suspicious scores (paper eqs. 6–7) and 1-D
//! 3-means over them (§4.3), so a single NaN-unsafe sort or a `HashMap`
//! iteration in filter state silently makes accept/defer/reject decisions
//! nondeterministic. This crate is a lightweight Rust tokenizer plus a
//! per-file lint engine enforcing five project rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D1` | no `HashMap`/`HashSet` in non-test code (iteration order) |
//! | `D2` | no `thread_rng`/`from_entropy`/`SystemTime::now` (seeded RNG only) |
//! | `F1` | no `.partial_cmp(..)` on floats — use `f64::total_cmp` |
//! | `F2` | no float `==`/`!=` against nonzero literals in non-test code |
//! | `P1` | no `unwrap()`/`expect()`/`panic!` in library non-test code |
//!
//! Escape hatch: `// lint:allow(<rule>) -- <reason>` on the violating line
//! or the line above. The reason is mandatory. See `docs/LINTS.md` for the
//! full catalogue, the rule-applicability matrix, and worked examples.
//!
//! Run it as `cargo run -p asyncfl-lint -- check` (add `--json` for the
//! machine-readable report CI archives). The crate has zero external
//! dependencies, like `asyncfl-telemetry`.

pub mod engine;
pub mod report;
pub mod rules;
pub mod tokenizer;

pub use engine::{check_source, Diagnostic, FileClass, FileReport};
pub use report::RunSummary;

/// Lints a set of `(path, source)` pairs and aggregates the results.
pub fn check_files<'a, I>(files: I) -> RunSummary
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut summary = RunSummary::default();
    for (path, source) in files {
        let report = check_source(path, source);
        summary.files_scanned += 1;
        summary.violations.extend(report.violations);
        summary.warnings.extend(report.warnings);
        summary.allows_used += report.allows_used;
        summary.allows_total += report.allows_total;
    }
    summary
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    summary
}
