//! `asyncfl-lint` — the AsyncFilter workspace invariant linter.
//!
//! Stock `clippy -D warnings` already gates CI, but it cannot express the
//! invariants this reproduction actually depends on: AsyncFilter's verdicts
//! hinge on floating-point suspicious scores (paper eqs. 6–7) and 1-D
//! 3-means over them (§4.3), so a single NaN-unsafe sort or a `HashMap`
//! iteration in filter state silently makes accept/defer/reject decisions
//! nondeterministic. This crate is a lightweight Rust tokenizer plus a
//! per-file lint engine enforcing five project rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D1` | no `HashMap`/`HashSet` in non-test code (iteration order) |
//! | `D2` | no `thread_rng`/`from_entropy`/`SystemTime::now` (seeded RNG only) |
//! | `F1` | no `.partial_cmp(..)` on floats — use `f64::total_cmp` |
//! | `F2` | no float `==`/`!=` against nonzero literals in non-test code |
//! | `P1` | no `unwrap()`/`expect()`/`panic!` in library non-test code |
//!
//! Escape hatch: `// lint:allow(<rule>) -- <reason>` on the violating line
//! or the line above. The reason is mandatory. See `docs/LINTS.md` for the
//! full catalogue, the rule-applicability matrix, and worked examples.
//!
//! Run it as `cargo run -p asyncfl-lint -- check` (add `--json` for the
//! machine-readable report CI archives). The crate has zero external
//! dependencies, like `asyncfl-telemetry`.

pub mod ast;
pub mod ast_rules;
pub mod engine;
pub mod parser;
pub mod report;
pub mod rules;
pub mod scope;
pub mod tokenizer;

pub use engine::{check_source, Diagnostic, FileClass, FileReport};
pub use report::RunSummary;

/// Workspace documentation the X1 contract-drift checks validate against.
/// A `None` field skips the corresponding check (partial trees).
#[derive(Debug, Default)]
pub struct WorkspaceDocs {
    /// Contents of `docs/OBSERVABILITY.md` — must mention every `Event`
    /// kind constructed in non-test workspace code.
    pub observability: Option<String>,
    /// Contents of `docs/LINTS.md` — must have an entry for every rule id
    /// in [`rules::RULES`].
    pub lints: Option<String>,
}

/// Lints a set of `(path, source)` pairs and aggregates the results.
/// Per-file rules only; use [`check_workspace`] to add the cross-file X1
/// contract-drift checks.
pub fn check_files<'a, I>(files: I) -> RunSummary
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    check_workspace(files, &WorkspaceDocs::default())
}

/// Lints a set of `(path, source)` pairs, then runs the workspace-level X1
/// contract-drift checks against the provided documentation.
pub fn check_workspace<'a, I>(files: I, docs: &WorkspaceDocs) -> RunSummary
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut summary = RunSummary::default();
    // kind → first construction site (path, line), in scan order.
    let mut event_kinds: Vec<(String, String, u32)> = Vec::new();
    for (path, source) in files {
        let report = check_source(path, source);
        summary.files_scanned += 1;
        summary.parse_fallbacks += usize::from(report.parse_fallback);
        summary.violations.extend(report.violations);
        summary.warnings.extend(report.warnings);
        summary.allows_used += report.allows_used;
        summary.allows_total += report.allows_total;
        for ev in report.event_kinds {
            if !event_kinds.iter().any(|(k, _, _)| *k == ev.kind) {
                event_kinds.push((ev.kind, path.to_string(), ev.line));
            }
        }
    }

    // X1a — every constructed Event kind must appear (backticked) in the
    // observability catalogue. Anchored at the first construction site so
    // the fix (document the kind) has a pointer to what emits it.
    if let Some(doc) = &docs.observability {
        for (kind, path, line) in &event_kinds {
            if !doc.contains(&format!("`{kind}`")) {
                summary.violations.push(Diagnostic {
                    rule: "X1".to_string(),
                    path: path.clone(),
                    line: *line,
                    col: 0,
                    span: None,
                    snippet: None,
                    message: format!(
                        "Event kind `{kind}` is constructed here but has no entry in \
                         docs/OBSERVABILITY.md — document it in the event catalogue"
                    ),
                });
            }
        }
    }

    // X1b — every rule id must have a catalogue entry in docs/LINTS.md.
    if let Some(doc) = &docs.lints {
        for rule in rules::RULES {
            if !doc.contains(&format!("`{}`", rule.id))
                && !doc.contains(&format!("### {}", rule.id))
            {
                summary.violations.push(Diagnostic {
                    rule: "X1".to_string(),
                    path: "docs/LINTS.md".to_string(),
                    line: 1,
                    col: 0,
                    span: None,
                    snippet: None,
                    message: format!(
                        "rule {} ({}) has no entry in docs/LINTS.md — the catalogue \
                         must cover every id in RULES",
                        rule.id, rule.summary
                    ),
                });
            }
        }
    }

    summary
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    summary
}
