//! AST-level rule checks: the scope-aware re-expression of D1–D4/F1/F2/P1
//! plus the rule families the token engine cannot see (F3 float-reduction
//! policy, P2 unchecked indexing).
//!
//! The walker threads three pieces of context the token scan never had:
//! the per-file symbol table ([`FileScope`]) so `std::collections::HashMap`
//! and a local `HashMap` alias are distinguished; a float-local dataflow
//! map (`let acc: f64` / float-literal initializers / float fn params) so
//! `acc += x` inside a loop is recognized as a reduction; and the loop/
//! closure nesting depth. Test-gated items are computed from parsed
//! attributes instead of the old token heuristic.

use crate::ast::{
    BinOp, Block, Expr, ExprKind, File, FnItem, Item, ItemKind, LineIndex, Lit, MacroCall, Span,
    Stmt, TypeRef,
};
use crate::engine::FileClass;
use crate::rules::RuleHit;
use crate::scope::{FileScope, Resolved};
use crate::tokenizer::{float_literal_is_zero, Lexed, TokenKind};

/// One `Event::<Kind>` construction site, collected for the workspace-level
/// X1 contract-drift check.
#[derive(Debug, Clone)]
pub struct EventKindUse {
    /// The snake_case event kind (as `Event::kind()` renders it).
    pub kind: String,
    /// 1-based line of the construction.
    pub line: u32,
    /// Byte span of the path.
    pub span: (u32, u32),
}

/// Everything the AST pass produces for one file.
#[derive(Debug, Default)]
pub struct AstScan {
    /// Raw rule hits, before `lint:allow` filtering.
    pub hits: Vec<RuleHit>,
    /// `Event::<Kind>` constructions found in non-test code.
    pub event_kinds: Vec<EventKindUse>,
}

/// The one module allowed to contain raw float reductions and raw indexing:
/// its fixed reduction trees ARE the determinism contract (DESIGN.md §9),
/// and it is audited as a unit.
const KERNELS_PATH: &str = "crates/tensor/src/kernels.rs";

/// Crates whose non-test code is subject to P2 (unchecked indexing): the
/// hot paths that ROADMAP scale work will churn.
const P2_CRATES: &[&str] = &["tensor", "ml", "sim", "core"];

/// Runs every AST rule over one parsed file.
pub fn scan(
    file: &File,
    scope: &FileScope,
    class: &FileClass,
    rel_path: &str,
    lexed: &Lexed,
    index: &LineIndex,
) -> AstScan {
    let mut w = Walker {
        scope,
        class,
        is_kernels: rel_path == KERNELS_PATH,
        p1_applies: !class.is_bench_crate
            && !class.is_test_file
            && !class.is_binary
            && !class.is_example,
        p2_applies: class
            .crate_name
            .as_deref()
            .is_some_and(|c| P2_CRATES.contains(&c))
            && !class.is_test_file
            && !class.is_binary
            && !class.is_example,
        f2_applies: !class.is_test_file,
        f3_applies: !class.is_test_file && !class.is_bench_crate,
        in_test: class.is_test_file,
        loop_depth: 0,
        closure_depth: 0,
        debug_assert_depth: 0,
        float_locals: vec![Default::default()],
        out: AstScan::default(),
    };
    for item in &file.items {
        w.walk_item(item);
    }
    let test_lines = test_line_set(file, index, class.is_test_file);
    w.out
        .hits
        .extend(name_resolution_hits(lexed, scope, class, &test_lines));
    w.out.hits.sort_by_key(|h| (h.line, h.span.0));
    w.out
}

/// Marks every line covered by a test-gated item.
fn test_line_set(file: &File, index: &LineIndex, whole_file: bool) -> Vec<(u32, u32)> {
    if whole_file {
        return vec![(0, u32::MAX)];
    }
    let mut spans = Vec::new();
    fn walk(items: &[Item], index: &LineIndex, out: &mut Vec<(u32, u32)>) {
        for item in items {
            if item.test_gated {
                let (first, _) = index.line_col(item.span.start);
                let (last, _) = index.line_col(item.span.end.saturating_sub(1));
                out.push((first, last));
                continue;
            }
            match &item.kind {
                ItemKind::Mod {
                    items: Some(inner), ..
                } => walk(inner, index, out),
                ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => {
                    walk(items, index, out);
                }
                _ => {}
            }
        }
    }
    walk(&file.items, index, &mut spans);
    spans
}

fn line_in(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| a <= line && line <= b)
}

/// Names whose resolution decides D1/D2/D4: the token positions come from
/// the lexer (so type positions, struct fields and signatures are covered),
/// the *meaning* comes from the scope table.
fn name_resolution_hits(
    lexed: &Lexed,
    scope: &FileScope,
    class: &FileClass,
    test_lines: &[(u32, u32)],
) -> Vec<RuleHit> {
    let toks = &lexed.tokens;
    let mut hits = Vec::new();
    let d1_applies = !class.is_bench_crate && !class.is_test_file;
    let d2_applies = !class.is_bench_crate && !class.is_telemetry_crate;
    let d3_applies = !class.is_test_file;
    let d4_applies = !class.is_telemetry_crate && !class.is_criterion_crate;

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let tested = line_in(test_lines, t.line);
        let next_is = |s: &str| {
            toks.get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Op && n.text == s)
        };
        let then_ident = |s: &str| {
            toks.get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident && n.text == s)
        };

        // D1 — nondeterministic collections, resolution-aware. Fires on
        // the name `HashMap`/`HashSet` unless the file defines that name
        // itself, and on any alias whose import resolves into a hash
        // collection.
        if d1_applies && !tested {
            let hashy = |name: &str| name == "HashMap" || name == "HashSet";
            let mut flagged: Option<&str> = None;
            if hashy(&t.text) && scope.resolve_name(&t.text) != Resolved::Local {
                flagged = Some(t.text.as_str());
            } else if let Resolved::Import(full) = scope.resolve_name(&t.text) {
                if full.last().is_some_and(|l| hashy(l)) && full.first() != Some(&t.text) {
                    flagged = Some(if full.last().is_some_and(|l| l == "HashMap") {
                        "HashMap"
                    } else {
                        "HashSet"
                    });
                }
            }
            if let Some(which) = flagged {
                let replacement = if which == "HashMap" {
                    "BTreeMap"
                } else {
                    "BTreeSet"
                };
                hits.push(RuleHit {
                    rule: "D1",
                    line: t.line,
                    span: (t.start, t.end),
                    message: format!(
                        "{} iteration order is nondeterministic; filter verdicts and \
                         aggregation must be reproducible — use {replacement} or a sorted Vec",
                        which
                    ),
                });
            }
        }

        // D2 — ambient entropy / wall clock.
        if d2_applies {
            if t.text == "thread_rng" || t.text == "from_entropy" {
                hits.push(RuleHit {
                    rule: "D2",
                    line: t.line,
                    span: (t.start, t.end),
                    message: format!(
                        "{} draws ambient entropy; derive a seeded StdRng from the run \
                         seed so filter decisions replay bit-identically",
                        t.text
                    ),
                });
            }
            if t.text == "SystemTime"
                && next_is("::")
                && then_ident("now")
                && scope.resolve_name("SystemTime") != Resolved::Local
            {
                hits.push(RuleHit {
                    rule: "D2",
                    line: t.line,
                    span: (t.start, t.end),
                    message: "SystemTime::now makes behaviour depend on wall-clock time; \
                              thread virtual time through instead"
                        .to_string(),
                });
            }
        }

        // D4 — the sanctioned wall clock lives in asyncfl-telemetry.
        if d4_applies
            && t.text == "Instant"
            && next_is("::")
            && then_ident("now")
            && scope.resolve_name("Instant") != Resolved::Local
        {
            hits.push(RuleHit {
                rule: "D4",
                line: t.line,
                span: (t.start, t.end),
                message: "Instant::now() bypasses the sanctioned wall clock; use \
                          asyncfl_telemetry::Stopwatch so all timing reads one \
                          auditable source"
                    .to_string(),
            });
        }

        // D3 — hermetic build: no paths into replaced external crates.
        if d3_applies
            && !tested
            && (t.text == "rand" || t.text == "crossbeam" || t.text == "parking_lot")
            && next_is("::")
        {
            let replacement = match t.text.as_str() {
                "rand" => "asyncfl_rng",
                "crossbeam" => "std::sync::mpsc",
                _ => "std::sync::Mutex/RwLock",
            };
            hits.push(RuleHit {
                rule: "D3",
                line: t.line,
                span: (t.start, t.end),
                message: format!(
                    "{}:: pulls an external crate back into the runtime graph and breaks \
                     the offline build; use {replacement} instead",
                    t.text
                ),
            });
        }
    }
    hits
}

struct Walker<'a> {
    scope: &'a FileScope,
    class: &'a FileClass,
    is_kernels: bool,
    p1_applies: bool,
    p2_applies: bool,
    f2_applies: bool,
    f3_applies: bool,
    in_test: bool,
    loop_depth: usize,
    closure_depth: usize,
    debug_assert_depth: usize,
    /// Stack of lexical scopes mapping binding name → "is a float scalar".
    float_locals: Vec<std::collections::BTreeMap<String, bool>>,
    out: AstScan,
}

impl<'a> Walker<'a> {
    fn hit(&mut self, rule: &'static str, span: Span, message: String) {
        self.out.hits.push(RuleHit {
            rule,
            line: span.line,
            span: (span.start, span.end),
            message,
        });
    }

    fn declare(&mut self, name: &str, is_float: bool) {
        if let Some(top) = self.float_locals.last_mut() {
            top.insert(name.to_string(), is_float);
        }
    }

    fn is_float_local(&self, name: &str) -> bool {
        for scope in self.float_locals.iter().rev() {
            if let Some(&f) = scope.get(name) {
                return f;
            }
        }
        false
    }

    fn walk_item(&mut self, item: &Item) {
        let was_test = self.in_test;
        self.in_test |= item.test_gated;
        match &item.kind {
            ItemKind::Fn(f) => self.walk_fn(f),
            ItemKind::ConstStatic { init: Some(e), .. } => {
                self.walk_expr(e);
            }
            ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. }
            | ItemKind::Mod {
                items: Some(items), ..
            } => {
                for it in items {
                    self.walk_item(it);
                }
            }
            ItemKind::Macro(mac) => self.walk_macro(mac),
            _ => {}
        }
        self.in_test = was_test;
    }

    fn walk_fn(&mut self, f: &FnItem) {
        let Some(body) = &f.body else { return };
        self.float_locals.push(Default::default());
        for (name, ty) in &f.params {
            if let Some(n) = name {
                let is_float = ty.as_ref().is_some_and(TypeRef::is_float_scalar);
                self.declare(n.clone().as_str(), is_float);
            }
        }
        // F3(e): a float-returning fn whose tail expression is a bare
        // `.sum()`/`.product()` — the return type annotates the reduction.
        if self.f3_active() {
            if let (Some(ret), Some(tail)) = (&f.ret, body.tail_expr()) {
                if ret.is_float_scalar() {
                    if let Some((name, span)) = bare_reduction_call(tail) {
                        self.float_reduction_hit(name, span);
                    }
                }
            }
        }
        self.walk_block_inner(body);
        self.float_locals.pop();
    }

    fn f3_active(&self) -> bool {
        // debug_assert! args are exempt: a tolerance check inside an
        // assertion is stripped in release and cannot steer the run's
        // numerics, so its reduction order is not part of the contract.
        self.f3_applies && !self.in_test && !self.is_kernels && self.debug_assert_depth == 0
    }

    fn float_reduction_hit(&mut self, what: &str, span: Span) {
        self.hit(
            "F3",
            span,
            format!(
                "ad-hoc float reduction ({what}) outside asyncfl-tensor::kernels — \
                 reduction order is the determinism contract (DESIGN.md §9); \
                 route through kernels::sum_seq/kernels::mean_seq or the fixed-tree kernels"
            ),
        );
    }

    fn walk_block(&mut self, block: &Block) {
        self.float_locals.push(Default::default());
        self.walk_block_inner(block);
        self.float_locals.pop();
    }

    fn walk_block_inner(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.walk_stmt(stmt);
        }
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let {
                pat, ty, init, els, ..
            } => {
                if let Some(e) = init {
                    self.walk_expr(e);
                    // F3(d): `let s: f64 = xs.iter().sum();` — the
                    // annotation types the reduction.
                    if self.f3_active() {
                        if let Some(t) = ty {
                            if t.is_float_scalar() {
                                if let Some((name, span)) = bare_reduction_call(e) {
                                    self.float_reduction_hit(name, span);
                                }
                            }
                        }
                    }
                }
                if let Some(b) = els {
                    self.walk_block(b);
                }
                // Record binding float-ness for the += dataflow.
                if let Some(name) = &pat.single {
                    let is_float = match ty {
                        Some(t) => t.is_float_scalar(),
                        None => init.as_ref().is_some_and(expr_is_floatish),
                    };
                    self.declare(name, is_float);
                } else {
                    for b in &pat.bindings {
                        self.declare(b, false);
                    }
                }
            }
            Stmt::Expr { expr, .. } => self.walk_expr(expr),
            Stmt::Item(item) => self.walk_item(item),
        }
    }

    fn walk_macro(&mut self, mac: &MacroCall) {
        let is_debug_assert = mac.path.last().starts_with("debug_assert");
        // P1: panic! in library code.
        if self.p1_applies && !self.in_test && mac.path.last() == "panic" {
            self.hit(
                "P1",
                mac.path.span,
                "panic! in library code aborts the whole server; return a \
                 Result or justify with a lint:allow"
                    .to_string(),
            );
        }
        if is_debug_assert {
            self.debug_assert_depth += 1;
        }
        for arg in &mac.args {
            self.walk_expr(arg);
        }
        if is_debug_assert {
            self.debug_assert_depth -= 1;
        }
    }

    fn walk_expr(&mut self, expr: &Expr) {
        match &expr.kind {
            ExprKind::Path(_) | ExprKind::Lit(_) | ExprKind::Opaque => {}
            ExprKind::Unary(e) | ExprKind::Ref(e) | ExprKind::Try(e) | ExprKind::Await(e) => {
                self.walk_expr(e);
            }
            ExprKind::Field(e) => self.walk_expr(e),
            ExprKind::Cast { expr: e, .. } => self.walk_expr(e),
            ExprKind::Jump(v) => {
                if let Some(e) = v {
                    self.walk_expr(e);
                }
            }
            ExprKind::Binary {
                op,
                op_text,
                op_span,
                lhs,
                rhs,
            } => {
                // F2 — float equality against nonzero literals/constants.
                if self.f2_applies
                    && !self.in_test
                    && matches!(op, BinOp::Eq | BinOp::Ne)
                    && (expr_is_fragile_float(lhs) || expr_is_fragile_float(rhs))
                {
                    self.hit(
                        "F2",
                        *op_span,
                        format!(
                            "float {op_text} against a nonzero literal is rounding-fragile (and \
                             always false for NaN); compare with an epsilon or use \
                             is_nan()/is_infinite()"
                        ),
                    );
                }
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            ExprKind::Assign { lhs, rhs } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            ExprKind::AssignOp {
                op_text,
                op_span,
                lhs,
                rhs,
            } => {
                // F3(c) — `acc += x` on a known-float local inside a loop
                // or closure body is a sum reduction in disguise.
                if self.f3_active()
                    && op_text == "+="
                    && (self.loop_depth > 0 || self.closure_depth > 0)
                {
                    if let ExprKind::Path(p) = &lhs.kind {
                        if p.segments.len() == 1 && self.is_float_local(&p.segments[0]) {
                            self.float_reduction_hit(
                                &format!("`{} +=` in a loop", p.segments[0]),
                                *op_span,
                            );
                        }
                    }
                }
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            ExprKind::Call { callee, args } => {
                self.walk_expr(callee);
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::MethodCall {
                recv,
                name,
                name_span,
                turbofish,
                args,
            } => {
                self.method_call_rules(name, *name_span, turbofish, args);
                self.walk_expr(recv);
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::Index {
                recv,
                index,
                is_range,
            } => {
                // P2 — unchecked indexing on hot paths. Range slicing is
                // included: `&xs[a..b]` panics exactly like `xs[i]`.
                if self.p2_applies
                    && !self.in_test
                    && !self.is_kernels
                    && self.debug_assert_depth == 0
                {
                    let what = if *is_range {
                        "range slicing"
                    } else {
                        "indexing"
                    };
                    self.hit(
                        "P2",
                        expr.span,
                        format!(
                            "unchecked {what} `[…]` can panic mid-run on a hot path; use \
                             .get()/.get_mut(), an iterator, or justify the invariant with \
                             a lint:allow"
                        ),
                    );
                }
                self.walk_expr(recv);
                self.walk_expr(index);
            }
            ExprKind::Macro(mac) => self.walk_macro(mac),
            ExprKind::Block(b) => self.walk_block(b),
            ExprKind::If {
                cond,
                pat,
                then,
                else_,
            } => {
                self.walk_expr(cond);
                self.float_locals.push(Default::default());
                if let Some(p) = pat {
                    for b in &p.bindings {
                        self.declare(b, false);
                    }
                }
                self.walk_block_inner(then);
                self.float_locals.pop();
                if let Some(e) = else_ {
                    self.walk_expr(e);
                }
            }
            ExprKind::While { cond, body } => {
                self.walk_expr(cond);
                self.loop_depth += 1;
                self.walk_block(body);
                self.loop_depth -= 1;
            }
            ExprKind::Loop(body) => {
                self.loop_depth += 1;
                self.walk_block(body);
                self.loop_depth -= 1;
            }
            ExprKind::For { pat, iter, body } => {
                self.walk_expr(iter);
                self.loop_depth += 1;
                self.float_locals.push(Default::default());
                for b in &pat.bindings {
                    self.declare(b, false);
                }
                self.walk_block_inner(body);
                self.float_locals.pop();
                self.loop_depth -= 1;
            }
            ExprKind::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                for (pat, guard, body) in arms {
                    self.float_locals.push(Default::default());
                    for b in &pat.bindings {
                        self.declare(b, false);
                    }
                    if let Some(g) = guard {
                        self.walk_expr(g);
                    }
                    self.walk_expr(body);
                    self.float_locals.pop();
                }
            }
            ExprKind::Closure { params, body } => {
                self.closure_depth += 1;
                self.float_locals.push(Default::default());
                for b in &params.bindings {
                    self.declare(b, false);
                }
                self.walk_expr(body);
                self.float_locals.pop();
                self.closure_depth -= 1;
            }
            ExprKind::Range { lo, hi } => {
                if let Some(e) = lo {
                    self.walk_expr(e);
                }
                if let Some(e) = hi {
                    self.walk_expr(e);
                }
            }
            ExprKind::Struct { path, fields, rest } => {
                self.collect_event_kind(path, expr.span);
                for (_, v) in fields {
                    if let Some(e) = v {
                        self.walk_expr(e);
                    }
                }
                if let Some(e) = rest {
                    self.walk_expr(e);
                }
            }
            ExprKind::Tuple(es) | ExprKind::Array(es) => {
                for e in es {
                    self.walk_expr(e);
                }
            }
            ExprKind::Repeat { elem, len } => {
                self.walk_expr(elem);
                self.walk_expr(len);
            }
        }
        // Event path constructions without struct braces (unit-ish uses
        // like match arms construct nothing, so only `ExprKind::Struct`
        // and call-form `Event::X(…)` matter; calls have a Path callee).
        if let ExprKind::Call { callee, .. } = &expr.kind {
            if let ExprKind::Path(p) = &callee.kind {
                self.collect_event_kind(p, expr.span);
            }
        }
    }

    fn method_call_rules(
        &mut self,
        name: &str,
        name_span: Span,
        turbofish: &[String],
        args: &[Expr],
    ) {
        // F1 — NaN-unsafe comparator (applies to test code too).
        if name == "partial_cmp" {
            self.hit(
                "F1",
                name_span,
                "partial_cmp(..).unwrap()/expect() panics on NaN and poisons sort \
                 order; use f64::total_cmp for a NaN-safe total order"
                    .to_string(),
            );
        }
        // P1 — panic-freedom.
        if self.p1_applies && !self.in_test && (name == "unwrap" || name == "expect") {
            self.hit(
                "P1",
                name_span,
                format!(
                    ".{name}() can abort a long training run mid-flight; return an error, \
                     use unwrap_or/match, or justify with a lint:allow"
                ),
            );
        }
        if self.f3_active() {
            // F3(a) — explicitly float-typed reductions.
            if (name == "sum" || name == "product")
                && turbofish.iter().any(|t| t == "f32" || t == "f64")
            {
                self.float_reduction_hit(&format!(".{name}::<float>()"), name_span);
            }
            // F3(b) — fold with a float seed. Max/min folds are exempt:
            // they compute an order-independent extremum, so reduction
            // order cannot change the result.
            if name == "fold"
                && args.first().is_some_and(expr_is_floatish_literal)
                && !args.get(1).is_some_and(is_order_independent_combiner)
            {
                self.float_reduction_hit(".fold(<float literal>, …)", name_span);
            }
        }
    }

    /// Records `Event::Kind { … }` / `Event::Kind(…)` constructions for
    /// the X1 drift check. `Event` must resolve to the telemetry crate's
    /// event type (or be used inside the telemetry crate itself).
    fn collect_event_kind(&mut self, path: &crate::ast::Path, span: Span) {
        if self.in_test {
            return;
        }
        if path.segments.len() < 2 {
            return;
        }
        let n = path.segments.len();
        if path.segments[n - 2] != "Event" {
            return;
        }
        let is_event = if n == 2 {
            // Bare `Event::Kind` — meaning comes from the import map.
            match self.scope.resolve_name("Event") {
                Resolved::Import(full) => {
                    full.first().is_some_and(|c| c == "asyncfl_telemetry")
                        || (self.class.is_telemetry_crate
                            && full.last().is_some_and(|l| l == "Event"))
                }
                Resolved::Local => self.class.is_telemetry_crate,
                Resolved::Unresolved => self
                    .scope
                    .globs()
                    .iter()
                    .any(|g| g.first().is_some_and(|c| c == "asyncfl_telemetry")),
            }
        } else {
            // Qualified `…::Event::Kind` — canonicalize the prefix.
            let canon = self.scope.canonicalize(path);
            canon.first().is_some_and(|c| c == "asyncfl_telemetry")
                || (self.class.is_telemetry_crate
                    && canon
                        .first()
                        .is_some_and(|c| matches!(c.as_str(), "crate" | "super" | "self")))
        };
        if !is_event {
            return;
        }
        let variant = &path.segments[n - 1];
        if !variant.starts_with(char::is_uppercase) {
            return;
        }
        self.out.event_kinds.push(EventKindUse {
            kind: camel_to_snake(variant),
            line: span.line,
            span: (span.start, span.end),
        });
    }
}

/// CamelCase → snake_case, matching `Event::kind()`.
pub fn camel_to_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Whether an expression is (modulo unary minus/parens) a nonzero float
/// literal or a named float constant — the F2 fragile comparands.
fn expr_is_fragile_float(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Unary(inner) => expr_is_fragile_float(inner),
        ExprKind::Lit(Lit::Float(text)) => !float_literal_is_zero(text),
        ExprKind::Path(p) => matches!(p.last(), "NAN" | "INFINITY" | "NEG_INFINITY" | "EPSILON"),
        _ => false,
    }
}

/// Whether a fold combiner computes an order-independent extremum:
/// a `f64::max`/`f64::min` path, or a closure whose body is a single
/// `.max(…)`/`.min(…)` call (e.g. `|acc, x| acc.max(x.abs())`).
fn is_order_independent_combiner(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Path(p) => matches!(p.last(), "max" | "min"),
        ExprKind::Closure { body, .. } => match &body.kind {
            ExprKind::MethodCall { name, .. } => matches!(name.as_str(), "max" | "min"),
            _ => false,
        },
        _ => false,
    }
}

/// Whether an expression is a float literal (modulo unary minus).
fn expr_is_floatish_literal(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Unary(inner) => expr_is_floatish_literal(inner),
        ExprKind::Lit(Lit::Float(_)) => true,
        _ => false,
    }
}

/// Whether a `let` initializer makes the binding a float scalar: a float
/// literal, a negated float literal, or an `as f32`/`as f64` cast.
fn expr_is_floatish(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Unary(inner) => expr_is_floatish(inner),
        ExprKind::Lit(Lit::Float(_)) => true,
        ExprKind::Cast { ty, .. } => ty.is_float_scalar(),
        _ => false,
    }
}

/// If the expression is a `.sum()` / `.product()` method call with no
/// turbofish, returns the method name and its span.
fn bare_reduction_call(e: &Expr) -> Option<(&'static str, Span)> {
    if let ExprKind::MethodCall {
        name,
        name_span,
        turbofish,
        ..
    } = &e.kind
    {
        if turbofish.is_empty() {
            if name == "sum" {
                return Some((".sum()", *name_span));
            }
            if name == "product" {
                return Some((".product()", *name_span));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::camel_to_snake;

    #[test]
    fn camel_to_snake_matches_event_kind() {
        assert_eq!(camel_to_snake("UpdateReceived"), "update_received");
        assert_eq!(camel_to_snake("SpanClosed"), "span_closed");
        assert_eq!(camel_to_snake("FilterScore"), "filter_score");
        assert_eq!(camel_to_snake("CounterAdd"), "counter_add");
    }
}
