//! A minimal Rust lexer, sufficient for token-pattern lints.
//!
//! This is deliberately **not** a full parser: the lint rules in this crate
//! match short token sequences (`.partial_cmp(`, `== 1.5`, `panic!`), so all
//! we need is a stream of identifiers, literals and operators with correct
//! handling of the things that would otherwise produce false positives —
//! comments, (raw) strings, char literals vs. lifetimes, and float vs.
//! integer literals. Comments are captured separately because they carry the
//! `lint:allow` escape-hatch directives.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/oct/bin).
    Int,
    /// Float literal (has a fractional part, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// String literal (regular, raw, or byte); content is not retained.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Operator or punctuation. Multi-character operators relevant to the
    /// lint rules (`==`, `!=`, `::`, `->`, `..`, …) are single tokens.
    Op,
}

/// One lexed token with its source line (1-based) and byte span.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (empty for `Str`).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Byte offset of the first byte of the token.
    pub start: u32,
    /// Byte offset one past the last byte of the token.
    pub end: u32,
}

/// A comment (line or block), captured for `lint:allow` directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text, excluding the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for line comments).
    pub end_line: u32,
    /// Byte offset of the first byte of the comment marker.
    pub start: u32,
    /// Byte offset one past the comment's last byte.
    pub end: u32,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators the rules care about, longest first so greedy
/// matching is unambiguous.
const MULTI_OPS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lexes `source` into tokens and comments. Never panics: malformed input
/// (unterminated strings, stray bytes) degrades into best-effort tokens,
/// which is acceptable for linting code that `rustc` already accepts.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    // Byte offset of each char index (plus one-past-the-end), so tokens can
    // carry byte spans while the scanner works in char indices.
    let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut byte = 0u32;
    for c in &chars {
        offsets.push(byte);
        byte += c.len_utf8() as u32;
    }
    offsets.push(byte);
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: chars[start..j].iter().collect(),
                    line,
                    end_line: line,
                    start: offsets[i],
                    end: offsets[j],
                });
                i = j;
                continue;
            }
            if chars[i + 1] == '*' {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < n && depth > 0 {
                    if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                line += count_lines(&chars[i..j]);
                out.comments.push(Comment {
                    text: chars[start..end].iter().collect(),
                    line: start_line,
                    end_line: line,
                    start: offsets[i],
                    end: offsets[j],
                });
                i = j;
                continue;
            }
        }
        // Raw / byte string prefixes and raw identifiers.
        if c == 'r' || c == 'b' {
            if let Some((j, lines, kind)) = lex_prefixed_literal(&chars, i) {
                out.tokens.push(Token {
                    kind,
                    text: String::new(),
                    line,
                    start: offsets[i],
                    end: offsets[j],
                });
                line += lines;
                i = j;
                continue;
            }
        }
        // Regular string.
        if c == '"' {
            let (j, lines) = skip_string(&chars, i);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: String::new(),
                line,
                start: offsets[i],
                end: offsets[j],
            });
            line += lines;
            i = j;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let (mut token, j) = lex_quote(&chars, i, line);
            token.start = offsets[i];
            token.end = offsets[j];
            out.tokens.push(token);
            i = j;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let (mut token, j) = lex_number(&chars, i, line);
            token.start = offsets[i];
            token.end = offsets[j];
            out.tokens.push(token);
            i = j;
            continue;
        }
        // Identifiers / keywords.
        if c == '_' || c.is_alphabetic() {
            let mut j = i + 1;
            while j < n && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
                start: offsets[i],
                end: offsets[j],
            });
            i = j;
            continue;
        }
        // Multi-char operators, longest first.
        let mut matched = false;
        for op in MULTI_OPS {
            let len = op.len();
            if i + len <= n && chars[i..i + len].iter().collect::<String>() == **op {
                out.tokens.push(Token {
                    kind: TokenKind::Op,
                    text: (*op).to_string(),
                    line,
                    start: offsets[i],
                    end: offsets[i + len],
                });
                i += len;
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.tokens.push(Token {
            kind: TokenKind::Op,
            text: c.to_string(),
            line,
            start: offsets[i],
            end: offsets[i + 1],
        });
        i += 1;
    }
    out
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` and raw identifiers
/// (`r#match`). Returns `(next_index, newlines_consumed, kind)` when the
/// position really starts such a literal / identifier, `None` when the `r` /
/// `b` is just the start of a plain identifier.
fn lex_prefixed_literal(chars: &[char], i: usize) -> Option<(usize, u32, TokenKind)> {
    let n = chars.len();
    let mut j = i + 1;
    if chars[i] == 'b' && j < n && chars[j] == 'r' {
        j += 1;
    }
    if chars[i] == 'b' && j == i + 1 && j < n && chars[j] == '\'' {
        // Byte char literal b'x'.
        let (_, end) = lex_quote(chars, j, 0);
        return Some((end, 0, TokenKind::Char));
    }
    // Count hashes (raw strings only make sense when an `r` is present).
    let has_r = chars[i] == 'r' || (j > i + 1);
    let mut hashes = 0usize;
    while has_r && j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if has_r && hashes > 0 && j < n && (chars[j] == '_' || chars[j].is_alphabetic()) {
        // Raw identifier r#ident.
        let mut k = j;
        while k < n && (chars[k] == '_' || chars[k].is_alphanumeric()) {
            k += 1;
        }
        return Some((k, 0, TokenKind::Ident));
    }
    if j < n && chars[j] == '"' {
        // (Raw) string: scan for closing quote followed by `hashes` hashes.
        let mut k = j + 1;
        let mut newlines = 0u32;
        while k < n {
            if chars[k] == '\n' {
                newlines += 1;
            }
            if chars[k] == '\\' && hashes == 0 {
                k += 2;
                continue;
            }
            if chars[k] == '"' {
                let mut h = 0usize;
                while h < hashes && k + 1 + h < n && chars[k + 1 + h] == '#' {
                    h += 1;
                }
                if h == hashes {
                    return Some((k + 1 + hashes, newlines, TokenKind::Str));
                }
            }
            k += 1;
        }
        return Some((n, newlines, TokenKind::Str));
    }
    None
}

/// Skips a regular `"…"` string starting at `i`. Returns `(next_index,
/// newlines_consumed)`.
fn skip_string(chars: &[char], i: usize) -> (usize, u32) {
    let n = chars.len();
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                newlines += 1;
                j += 1;
            }
            '"' => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (n, newlines)
}

/// Disambiguates a `'` into a lifetime or a char literal.
fn lex_quote(chars: &[char], i: usize, line: u32) -> (Token, usize) {
    let n = chars.len();
    // Lifetime: 'ident not followed by a closing quote.
    if i + 1 < n && (chars[i + 1] == '_' || chars[i + 1].is_alphabetic()) {
        let mut j = i + 2;
        while j < n && (chars[j] == '_' || chars[j].is_alphanumeric()) {
            j += 1;
        }
        if j >= n || chars[j] != '\'' {
            return (
                Token {
                    kind: TokenKind::Lifetime,
                    text: chars[i..j].iter().collect(),
                    line,
                    start: 0,
                    end: 0,
                },
                j,
            );
        }
    }
    // Char literal, possibly escaped ('\n', '\'', '\u{1F600}').
    let mut j = i + 1;
    if j < n && chars[j] == '\\' {
        j += 2;
        if j <= n && j >= 2 && chars[j - 1] == 'u' {
            while j < n && chars[j] != '}' {
                j += 1;
            }
            j += 1;
        }
    } else if j < n {
        j += 1;
    }
    if j < n && chars[j] == '\'' {
        j += 1;
    }
    (
        Token {
            kind: TokenKind::Char,
            text: String::new(),
            line,
            start: 0,
            end: 0,
        },
        j,
    )
}

/// Lexes a numeric literal starting at a digit. Distinguishes floats from
/// integers: a float has a consumed `.`, an exponent, or an `f32`/`f64`
/// suffix. A `.` is consumed only when followed by a digit, so `1.max(2)`
/// and range expressions (`0..n`) lex as integers.
fn lex_number(chars: &[char], i: usize, line: u32) -> (Token, usize) {
    let n = chars.len();
    let mut j = i;
    let mut is_float = false;
    // Radix prefixes never start floats.
    if chars[i] == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'o' | 'b') {
        j = i + 2;
        while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (
            Token {
                kind: TokenKind::Int,
                text: chars[i..j].iter().collect(),
                line,
                start: 0,
                end: 0,
            },
            j,
        );
    }
    while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    if j < n && chars[j] == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
        is_float = true;
        j += 1;
        while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
            j += 1;
        }
    }
    if j < n && (chars[j] == 'e' || chars[j] == 'E') {
        let mut k = j + 1;
        if k < n && (chars[k] == '+' || chars[k] == '-') {
            k += 1;
        }
        if k < n && chars[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (f64, u32, usize, …).
    let suffix_start = j;
    while j < n && (chars[j] == '_' || chars[j].is_alphanumeric()) {
        j += 1;
    }
    let suffix: String = chars[suffix_start..j].iter().collect();
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    (
        Token {
            kind: if is_float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            text: chars[i..j].iter().collect(),
            line,
            start: 0,
            end: 0,
        },
        j,
    )
}

/// Whether a float-literal token text denotes exactly zero (`0.0`, `0.`,
/// `0e3`, `0.000f64`). Used by the F2 rule's exact-zero exemption.
pub fn float_literal_is_zero(text: &str) -> bool {
    let cleaned: String = text
        .chars()
        .filter(|c| *c != '_')
        .collect::<String>()
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .to_string();
    // Strip an exponent: the mantissa alone decides zero-ness.
    let mantissa = match cleaned.split_once(['e', 'E']) {
        Some((m, _)) => m,
        None => cleaned.as_str(),
    };
    mantissa.chars().all(|c| c == '0' || c == '.') && mantissa.contains('0')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let lexed = lex("let a = 1; // HashMap here\n/* HashSet\ntoo */ let b;");
        assert!(lexed.tokens.iter().all(|t| t.text != "HashMap"));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap"));
        assert!(lexed.comments[1].text.contains("HashSet"));
    }

    #[test]
    fn strings_do_not_leak_identifiers() {
        assert_eq!(idents(r#"let s = "unwrap partial_cmp";"#), vec!["let", "s"]);
        assert_eq!(idents(r##"let s = r#"panic!"#;"##), vec!["let", "s"]);
        assert_eq!(idents(r#"let s = b"expect";"#), vec!["let", "s"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn float_vs_int_literals() {
        let kinds: Vec<TokenKind> = lex("1 1.5 2e3 0x1F 3f64 4usize 0..n 1.max(2)")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds[0], TokenKind::Int);
        assert_eq!(kinds[1], TokenKind::Float);
        assert_eq!(kinds[2], TokenKind::Float);
        assert_eq!(kinds[3], TokenKind::Int);
        assert_eq!(kinds[4], TokenKind::Float);
        assert_eq!(kinds[5], TokenKind::Int);
        // `0..n` must lex as Int, Op(..), Ident.
        assert_eq!(kinds[6], TokenKind::Int);
        // `1.max(2)` must lex the 1 as Int (method call, not float).
        let texts: Vec<String> = lex("1.max(2)").tokens.into_iter().map(|t| t.text).collect();
        assert_eq!(texts[0], "1");
        assert_eq!(texts[1], ".");
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let ops: Vec<String> = lex("a == b != c && d .. e ..= f :: g -> h => i")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Op)
            .map(|t| t.text)
            .collect();
        assert_eq!(ops, vec!["==", "!=", "&&", "..", "..=", "::", "->", "=>"]);
    }

    #[test]
    fn assignment_with_negation_is_not_ne() {
        let ops: Vec<String> = lex("a = !b;")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Op)
            .map(|t| t.text)
            .collect();
        assert_eq!(ops, vec!["=", "!", ";"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\nc /* x\ny */ d");
        let lines: Vec<u32> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 4, 5]);
    }

    #[test]
    fn byte_spans_slice_back_to_source() {
        let src = "let \u{3b1} = 1.5; // note\nfoo == bar";
        let lexed = lex(src);
        for t in &lexed.tokens {
            let slice = &src[t.start as usize..t.end as usize];
            if !t.text.is_empty() {
                assert_eq!(slice, t.text, "token {t:?}");
            }
            assert!(t.end >= t.start);
        }
        let c = &lexed.comments[0];
        assert_eq!(&src[c.start as usize..c.end as usize], "// note");
        assert_eq!(c.line, 1);
        assert_eq!(c.end_line, 1);
    }

    #[test]
    fn zero_float_detection() {
        for z in ["0.0", "0.", "0.000", "0e3", "0.0f64", "0_0.0"] {
            assert!(float_literal_is_zero(z), "{z} should be zero");
        }
        for nz in ["1.0", "0.1", "1e-9", "10.0f32"] {
            assert!(!float_literal_is_zero(nz), "{nz} should be nonzero");
        }
    }
}
