//! Per-rule fixture tests: each rule must fire on a minimal violating
//! snippet, stay quiet once a justified `lint:allow` is added, and report
//! the exact `file:line` of the violation.

use asyncfl_lint::engine::check_source;

const LIB_PATH: &str = "crates/core/src/somefile.rs";

/// Violations as `(rule, line)` pairs for a library-classified source.
fn violations(source: &str) -> Vec<(String, u32)> {
    let report = check_source(LIB_PATH, source);
    report
        .violations
        .into_iter()
        .map(|d| {
            assert_eq!(d.path, LIB_PATH);
            (d.rule, d.line)
        })
        .collect()
}

/// Asserts that `source` produces exactly one violation of `rule` at `line`,
/// and that `allowed` (the same snippet with a justified directive) is clean.
fn fires_and_allows(rule: &str, line: u32, source: &str, allowed: &str) {
    let found = violations(source);
    assert_eq!(
        found,
        vec![(rule.to_string(), line)],
        "rule {rule}: wrong violations for:\n{source}"
    );
    let after_allow = violations(allowed);
    assert!(
        after_allow.is_empty(),
        "rule {rule}: allow did not suppress, got {after_allow:?} for:\n{allowed}"
    );
}

#[test]
fn d1_hashmap_in_library_state() {
    fires_and_allows(
        "D1",
        2,
        "use std::collections::VecDeque;\nstruct S { m: HashMap<u32, f64> }\n",
        "use std::collections::VecDeque;\n\
         // lint:allow(D1) -- scratch map, never iterated\n\
         struct S { m: HashMap<u32, f64> }\n",
    );
}

#[test]
fn d1_reports_hashset_too() {
    let found = violations("fn f() { let s: HashSet<u32> = HashSet::new(); }\n");
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|(r, l)| r == "D1" && *l == 1));
}

#[test]
fn d2_thread_rng_is_ambient_entropy() {
    fires_and_allows(
        "D2",
        1,
        "fn f() { let r = thread_rng(); }\n",
        "// lint:allow(D2) -- demo binary, reproducibility not required\n\
         fn f() { let r = thread_rng(); }\n",
    );
}

#[test]
fn d2_system_time_now() {
    fires_and_allows(
        "D2",
        2,
        "fn f() {\n    let t = SystemTime::now();\n}\n",
        "fn f() {\n    let t = SystemTime::now(); // lint:allow(D2) -- log timestamp only\n}\n",
    );
}

#[test]
fn d2_applies_even_inside_tests() {
    // A test seeded from ambient entropy is a flaky test.
    let src = "#[cfg(test)]\nmod tests {\n    fn f() { let r = thread_rng(); }\n}\n";
    let found = violations(src);
    assert_eq!(found, vec![("D2".to_string(), 3)]);
}

#[test]
fn d4_instant_now_outside_telemetry() {
    fires_and_allows(
        "D4",
        2,
        "fn f() {\n    let t = std::time::Instant::now();\n}\n",
        "fn f() {\n    \
             // lint:allow(D4) -- measuring the lint itself\n    \
             let t = std::time::Instant::now();\n}\n",
    );
}

#[test]
fn d4_exempts_telemetry_and_criterion_crates() {
    let snippet = "fn f() { let t = Instant::now(); }\n";
    assert!(check_source("crates/telemetry/src/clock.rs", snippet)
        .violations
        .is_empty());
    assert!(check_source("crates/criterion/src/lib.rs", snippet)
        .violations
        .is_empty());
    // The bench crate is NOT exempt: its harnesses time through Stopwatch.
    let found = check_source("crates/bench/src/perf.rs", snippet).violations;
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].rule, "D4");
    // Bare `Instant` without ::now (e.g. storing one handed out by the
    // clock module) does not fire.
    assert!(violations("fn f(t: std::time::Instant) {}\n").is_empty());
}

#[test]
fn d3_rand_import_breaks_hermetic_build() {
    fires_and_allows(
        "D3",
        1,
        "use rand::Rng;\nfn f() {}\n",
        "// lint:allow(D3) -- documentation example of the replaced API\n\
         use rand::Rng;\nfn f() {}\n",
    );
}

#[test]
fn d3_reports_crossbeam_and_parking_lot() {
    let found = violations("use crossbeam::channel;\nuse parking_lot::Mutex;\n");
    assert_eq!(
        found,
        vec![("D3".to_string(), 1), ("D3".to_string(), 2)],
        "{found:?}"
    );
}

#[test]
fn d3_ignores_first_party_replacements_and_test_code() {
    // The substitutes lex as different idents and must not fire.
    assert!(violations("use asyncfl_rng::RngExt;\nuse std::sync::mpsc;\n").is_empty());
    // Bare `rand` without a path separator (e.g. a local variable) is fine.
    assert!(violations("fn f(rand: u32) -> u32 { rand }\n").is_empty());
    // Test code is exempt: dev-dependencies may stay external.
    let src = "#[cfg(test)]\nmod tests {\n    use rand::Rng;\n}\n";
    assert!(violations(src).is_empty());
    assert!(check_source("crates/core/tests/it.rs", "use rand::Rng;\n")
        .violations
        .is_empty());
}

#[test]
fn f1_partial_cmp_sort() {
    // No `.unwrap()` in the snippet: that would additionally trip P1, and
    // this fixture isolates F1.
    fires_and_allows(
        "F1",
        2,
        "fn f(a: f64, b: f64) {\n    let _ = a.partial_cmp(&b);\n}\n",
        "fn f(a: f64, b: f64) {\n    \
             // lint:allow(F1) -- comparing versions, not floats\n    \
             let _ = a.partial_cmp(&b);\n}\n",
    );
}

#[test]
fn f1_fires_in_test_code_too() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n}\n";
    let found = violations(src);
    assert_eq!(found, vec![("F1".to_string(), 3)]);
}

#[test]
fn f1_ignores_partial_cmp_definitions() {
    // `fn partial_cmp` in a PartialOrd impl is a definition, not a call.
    let src = "impl PartialOrd for T {\n    fn partial_cmp(&self, o: &T) -> Option<Ordering> { None }\n}\n";
    assert!(violations(src).is_empty());
}

#[test]
fn f2_nonzero_literal_equality() {
    fires_and_allows(
        "F2",
        1,
        "fn f(x: f64) -> bool { x == 0.5 }\n",
        "// lint:allow(F2) -- sentinel written by us, bit-exact by construction\n\
         fn f(x: f64) -> bool { x == 0.5 }\n",
    );
}

#[test]
fn f2_nan_comparison_is_always_false() {
    let found = violations("fn f(x: f64) -> bool { x != f64::NAN }\n");
    assert_eq!(found, vec![("F2".to_string(), 1)]);
}

#[test]
fn f2_permits_exact_zero_checks() {
    // x == 0.0 is a well-defined IEEE sparsity/sentinel check.
    assert!(violations("fn f(x: f64) -> bool { x == 0.0 }\n").is_empty());
    assert!(violations("fn f(x: f64) -> bool { x != -0.0 }\n").is_empty());
}

#[test]
fn p1_unwrap_in_library_code() {
    fires_and_allows(
        "P1",
        2,
        "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // lint:allow(P1) -- caller guarantees Some\n}\n",
    );
}

#[test]
fn p1_panic_macro() {
    let found = violations("fn f() {\n    panic!(\"boom\");\n}\n");
    assert_eq!(found, vec![("P1".to_string(), 2)]);
}

#[test]
fn p1_exempts_test_code_binaries_and_bench_crate() {
    let snippet = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(check_source("crates/core/src/main.rs", snippet)
        .violations
        .is_empty());
    assert!(check_source("crates/core/src/bin/tool.rs", snippet)
        .violations
        .is_empty());
    assert!(check_source("crates/bench/src/lib.rs", snippet)
        .violations
        .is_empty());
    assert!(check_source("crates/core/tests/it.rs", snippet)
        .violations
        .is_empty());
    let in_test_mod = format!("#[cfg(test)]\nmod tests {{\n    {snippet}}}\n");
    assert!(check_source(LIB_PATH, &in_test_mod).violations.is_empty());
}

#[test]
fn stale_allow_is_a_hard_error() {
    // v2 semantics: a lint:allow whose rule no longer fires in its window
    // is rule A2 — a violation, not a warning — so dead justifications
    // cannot accumulate.
    let report = check_source(
        LIB_PATH,
        "// lint:allow(P1) -- stale justification\nfn f() {}\n",
    );
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, "A2");
    assert_eq!(report.violations[0].line, 1);
    assert!(report.warnings.is_empty());
}

#[test]
fn allow_without_reason_is_rejected() {
    let report = check_source(
        LIB_PATH,
        "fn f(x: Option<u32>) { x.unwrap(); } // lint:allow(P1)\n",
    );
    assert!(
        report.violations.iter().any(|d| d.rule == "A0"),
        "{:?}",
        report.violations
    );
}
