//@ lint-as: crates/core/src/fixture.rs
//! D4 — bare wall-clock reads outside the telemetry crate.

fn elapsed_ns() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
