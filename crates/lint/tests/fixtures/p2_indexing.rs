//@ lint-as: crates/core/src/fixture.rs
//! P2 — unchecked indexing in a hot-path crate (`crates/core`).

fn pick(scores: &[f64], winner: usize) -> f64 {
    scores[winner]
}

fn pick_checked(scores: &[f64], winner: usize) -> f64 {
    scores.get(winner).copied().unwrap_or(0.0)
}

fn justified(centroids: &[f64], cluster: usize) -> f64 {
    centroids[cluster] // lint:allow(P2) -- cluster ids index centroids by construction
}
