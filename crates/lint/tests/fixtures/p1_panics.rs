//@ lint-as: crates/core/src/fixture.rs
//! P1 — aborts in library code.

fn latest(buffer: &[u64]) -> u64 {
    *buffer.last().unwrap()
}

fn named(buffer: &[u64]) -> u64 {
    *buffer.first().expect("buffer must not be empty")
}
