//@ lint-as: crates/core/src/fixture.rs
//! Malformed file: the parser cannot produce an AST (unbalanced brace),
//! so the engine falls back to the token scan — which must still catch
//! token-visible violations like this D2.

fn broken( {
    let rng = thread_rng();
