//@ lint-as: crates/core/src/fixture.rs
//! D1 — hash collections in non-test library code.

use std::collections::HashMap;

struct RoundState {
    per_client: HashMap<usize, f64>,
}

struct Scratch {
    // lint:allow(D1) -- scratch set, never iterated; contents drained sorted
    seen: HashSet<u64>,
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        let _ = m;
    }
}
