//@ lint-as: crates/core/src/fixture.rs
//! A0/A2 — the escape hatch policed: a reason-less allow, an allow naming
//! an unknown rule, and a stale allow suppressing nothing.

// lint:allow(P1)
fn no_reason(buffer: &[u64]) -> u64 {
    *buffer.last().unwrap()
}

// lint:allow(Q9) -- no such rule
fn unknown_rule() {}

// lint:allow(D1) -- nothing below violates D1, so this is stale
fn stale() {}
