//@ lint-as: crates/core/src/fixture.rs
//! D2 — ambient entropy and wall-clock sources; fires even in tests.

fn seed() -> u64 {
    let rng = thread_rng();
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn even_tests_must_be_seeded() {
        let t = SystemTime::now();
        let _ = t;
    }
}
