//@ lint-as: crates/core/src/fixture.rs
//! F1 — NaN-unsafe float comparisons.

fn rank(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn rank_safely(scores: &mut [f64]) {
    scores.sort_by(f64::total_cmp);
}
