//@ lint-as: crates/core/src/fixture.rs
//! F3 — ad-hoc float reductions outside the kernels module, and the two
//! deliberate exemptions: order-independent max/min folds, and sums inside
//! `debug_assert!` arguments.

fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

fn running(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}

fn seeded_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, b| a + b)
}

fn max_fold_is_exempt(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

fn debug_assert_args_are_exempt(xs: &[f64]) {
    debug_assert!((xs.iter().map(|x| x * x).sum::<f64>() - 1.0).abs() < 1e-9);
}
