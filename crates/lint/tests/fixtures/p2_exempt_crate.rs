//@ lint-as: crates/analysis/src/fixture.rs
//! P2 applies only to the hot-path crates; `crates/analysis` is exempt.

fn pick(scores: &[f64], winner: usize) -> f64 {
    scores[winner]
}
