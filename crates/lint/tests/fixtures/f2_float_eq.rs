//@ lint-as: crates/core/src/fixture.rs
//! F2 — rounding-fragile float equality.

fn converged(loss: f64) -> bool {
    loss == 0.25
}

fn is_sentinel(x: f64) -> bool {
    x == f64::INFINITY
}

fn exact_zero_is_fine(x: f64) -> bool {
    x == 0.0
}
