//@ lint-as: crates/core/src/fixture.rs
//! D3 — runtime paths into replaced external crates break the hermetic
//! offline build.

use rand::Rng;

fn lock_free() {
    let q = crossbeam::queue::SegQueue::new();
    q.push(1u32);
}
