//@ lint-as: crates/core/src/fixture.rs
//! Multi-line justification: continuation comment lines extend both the
//! reason and the coverage window down to the code they explain.

// lint:allow(P1) -- the constructor asserted `k >= 1`, so the partition
// produced here is non-empty and `last()` cannot return `None`; the
// coverage window follows the wrapped reason down to the next code line.
fn covered(parts: &[u64]) -> u64 { *parts.last().unwrap() }
