//! Pin: the AST parser handles every Rust file in this workspace.
//!
//! The engine has a token-scan fallback for files the parser cannot
//! handle, but the fallback only runs the v1 rule set — F3/P2/A2 need the
//! AST. This test keeps the fallback an escape hatch for *future* syntax,
//! not a silent coverage hole today: if a language construct lands that
//! the parser rejects, this fails and the parser grows to match.

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_file_parses() {
    let root = workspace_root();
    let mut files = Vec::new();
    for sub in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(sub), &mut files);
    }
    assert!(
        files.len() > 50,
        "workspace walk found only {} files — wrong root?",
        files.len()
    );
    let mut failures = Vec::new();
    for path in &files {
        // The lint fixture corpus deliberately contains a malformed file.
        if path.components().any(|c| c.as_os_str() == "fixtures") {
            continue;
        }
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        let lexed = asyncfl_lint::tokenizer::lex(&src);
        if let Err(e) = asyncfl_lint::parser::parse_file(&lexed) {
            failures.push(format!(
                "{}:{}: {}",
                path.strip_prefix(&root).unwrap_or(path).display(),
                e.span.line,
                e.message
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "parser fell back on {} of {} files:\n{}",
        failures.len(),
        files.len(),
        failures.join("\n")
    );
}
