//! Golden-snapshot tests over the fixture corpus in `tests/fixtures/`.
//!
//! Each `*.rs` fixture is a small source file exercising one rule (or one
//! engine behaviour, like the token-scan fallback on malformed input). Its
//! first line declares the workspace path to lint it *as* — file
//! classification is path-driven, so `p2_indexing.rs` lints as a
//! `crates/core` source while `p2_exempt_crate.rs` lints as
//! `crates/analysis`:
//!
//! ```text
//! //@ lint-as: crates/core/src/fixture.rs
//! ```
//!
//! The expected diagnostics live next to each fixture in a `*.expected`
//! file holding the engine's rendered report verbatim. On mismatch the
//! test prints both; after an intentional rule change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p asyncfl-lint --test golden
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use asyncfl_lint::check_source;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Renders one fixture's full report: violations, warnings, and the
/// allow-usage tally — everything a rule change could plausibly move.
fn snapshot(rel_path: &str, source: &str) -> String {
    let report = check_source(rel_path, source);
    let mut out = String::new();
    for d in &report.violations {
        let _ = writeln!(out, "{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
    }
    for d in &report.warnings {
        let _ = writeln!(
            out,
            "{}:{}: [{}] warning: {}",
            d.path, d.line, d.rule, d.message
        );
    }
    let _ = writeln!(
        out,
        "-- fallback: {}, allows: {}/{}",
        report.parse_fallback, report.allows_used, report.allows_total
    );
    out
}

#[test]
fn fixtures_match_golden_snapshots() {
    let dir = fixtures_dir();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/fixtures must exist")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 10,
        "fixture corpus looks truncated: {fixtures:?}"
    );

    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for fixture in &fixtures {
        let source = fs::read_to_string(fixture).expect("fixture must be readable");
        let first = source.lines().next().unwrap_or("");
        let rel_path = first
            .strip_prefix("//@ lint-as:")
            .unwrap_or_else(|| panic!("{} lacks a `//@ lint-as:` header", fixture.display()))
            .trim();
        let got = snapshot(rel_path, &source);

        let golden_path = fixture.with_extension("expected");
        if update {
            fs::write(&golden_path, &got).expect("cannot write golden");
            continue;
        }
        let want = fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "missing golden {} — run UPDATE_GOLDEN=1 cargo test -p asyncfl-lint --test golden",
                golden_path.display()
            )
        });
        if got != want {
            failures.push(format!(
                "== {} ==\n-- expected --\n{want}\n-- got --\n{got}",
                fixture.file_name().unwrap_or_default().to_string_lossy()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches (UPDATE_GOLDEN=1 regenerates):\n{}",
        failures.join("\n")
    );
}

/// The malformed fixture must go through the token-scan fallback and still
/// catch the token-visible D2 — pinned explicitly (beyond the snapshot) so
/// a future parser change cannot silently downgrade the fallback path.
#[test]
fn malformed_fixture_exercises_fallback() {
    let path = fixtures_dir().join("malformed_fallback.rs");
    let source = fs::read_to_string(path).expect("fixture must be readable");
    let report = check_source("crates/core/src/fixture.rs", &source);
    assert!(report.parse_fallback, "parser should reject the fixture");
    assert!(
        report.warnings.iter().any(|w| w.rule == "PF"),
        "fallback must surface as a PF warning: {:?}",
        report.warnings
    );
    assert!(
        report.violations.iter().any(|v| v.rule == "D2"),
        "token scan must still catch thread_rng(): {:?}",
        report.violations
    );
}
