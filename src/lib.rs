//! **asyncfilter** — a Rust reproduction of *AsyncFilter: Detecting
//! Poisoning Attacks in Asynchronous Federated Learning* (Kang & Li,
//! MIDDLEWARE '24).
//!
//! This facade crate re-exports the whole stack under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `asyncfl-core` | **AsyncFilter** itself, the [`UpdateFilter`](core::UpdateFilter) plug-in trait, FLDetector, Zeno++/AFLGuard, robust aggregation rules |
//! | [`sim`] | `asyncfl-sim` | deterministic discrete-event AFL simulator + thread-per-client runtime |
//! | [`attacks`] | `asyncfl-attacks` | GD, LIE, Min-Max, Min-Sum untargeted poisoning attacks |
//! | [`ml`] | `asyncfl-ml` | models, optimizers, local training |
//! | [`data`] | `asyncfl-data` | synthetic dataset profiles, Dirichlet partitioning, samplers |
//! | [`clustering`] | `asyncfl-clustering` | exact 1-D k-means, k-means++, gap statistic |
//! | [`analysis`] | `asyncfl-analysis` | t-SNE/PCA, experiment grids, report tables |
//! | [`tensor`] | `asyncfl-tensor` | dense vectors/matrices |
//! | [`telemetry`] | `asyncfl-telemetry` | structured event tracing, metrics registry, timing spans |
//!
//! # Quickstart
//!
//! ```
//! use asyncfilter::prelude::*;
//!
//! // A small run: 16 clients, 3 of them malicious, GD attack.
//! let config = SimConfig::smoke_test();
//! let mut sim = Simulation::new(config);
//! let result = sim.run(Box::new(AsyncFilter::default()), AttackKind::Gd);
//! assert!(result.final_accuracy > 0.3);
//! ```
//!
//! See `examples/` for richer scenarios and
//! `cargo run --release -p asyncfl-bench --bin repro -- all` to regenerate
//! every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asyncfl_analysis as analysis;
pub use asyncfl_attacks as attacks;
pub use asyncfl_clustering as clustering;
pub use asyncfl_core as core;
pub use asyncfl_data as data;
pub use asyncfl_ml as ml;
pub use asyncfl_sim as sim;
pub use asyncfl_telemetry as telemetry;
pub use asyncfl_tensor as tensor;

/// The most common imports for building and running AFL experiments.
pub mod prelude {
    pub use asyncfl_attacks::{Attack, AttackKind};
    pub use asyncfl_core::aggregation::{Aggregator, MeanAggregator};
    pub use asyncfl_core::asyncfilter::{AsyncFilterConfig, MiddlePolicy};
    pub use asyncfl_core::{
        AsyncFilter, ClientUpdate, FilterContext, FilterOutcome, FlDetector, PassthroughFilter,
        UpdateFilter,
    };
    pub use asyncfl_data::partition::Partitioner;
    pub use asyncfl_data::DatasetProfile;
    pub use asyncfl_sim::config::SimConfig;
    pub use asyncfl_sim::metrics::{DetectionStats, RunResult};
    pub use asyncfl_sim::runner::Simulation;
    pub use asyncfl_sim::server::AggregationReport;
    pub use asyncfl_sim::threaded::run_threaded;
    pub use asyncfl_telemetry::{
        Event, JsonlSink, MemorySink, MetricsRegistry, NullSink, SharedSink, Sink, Span, Verdict,
    };
    pub use asyncfl_tensor::Vector;
}
