//! The reproduction's headline shape claims, as executable assertions.
//!
//! The default tests run scaled-down federations (seconds, CI-friendly).
//! The `#[ignore]`d tests assert the same shapes at the paper's full
//! setting (100 clients, Ω = 40, 60 rounds) — run them with
//! `cargo test --release --test paper_shapes -- --ignored`.

use asyncfilter::prelude::*;

/// A mid-size federation: large enough for the filter statistics to be
/// meaningful, small enough for CI.
fn mid_config(profile: DatasetProfile) -> SimConfig {
    let mut cfg = SimConfig::paper_default(profile);
    cfg.num_clients = 40;
    cfg.num_malicious = 8;
    cfg.aggregation_bound = 16;
    cfg.rounds = 25;
    cfg.test_samples = 800;
    cfg
}

fn run(cfg: &SimConfig, filter: Box<dyn UpdateFilter>, attack: AttackKind) -> f64 {
    Simulation::new(cfg.clone())
        .run(filter, attack)
        .final_accuracy
}

#[test]
fn shape_asyncfilter_rescues_gd_on_mnist_profile() {
    let cfg = mid_config(DatasetProfile::Mnist);
    let undefended = run(&cfg, Box::new(PassthroughFilter), AttackKind::Gd);
    let defended = run(&cfg, Box::new(AsyncFilter::default()), AttackKind::Gd);
    let benign = run(&cfg, Box::new(PassthroughFilter), AttackKind::None);
    assert!(undefended < 0.6, "GD too weak: {undefended}");
    assert!(defended > 0.85, "no recovery: {defended}");
    assert!(benign > 0.9);
}

#[test]
fn shape_no_attack_accuracy_preserved() {
    for profile in [DatasetProfile::Mnist, DatasetProfile::FashionMnist] {
        let cfg = mid_config(profile);
        let fedbuff = run(&cfg, Box::new(PassthroughFilter), AttackKind::None);
        let filtered = run(&cfg, Box::new(AsyncFilter::default()), AttackKind::None);
        assert!(
            filtered > fedbuff - 0.04,
            "{profile}: filter cost too high ({filtered} vs {fedbuff})"
        );
    }
}

#[test]
#[ignore = "full paper-scale run (~1 min); use --ignored"]
fn full_scale_fldetector_is_not_an_async_substitute() {
    // The paper's motivating claim: the synchronous SOTA detector does not
    // rescue GD in the asynchronous setting the way AsyncFilter does. This
    // is a *scale* phenomenon — with few clients every client reports every
    // round and FLDetector's history-based predictions still work; at the
    // paper's 100-client buffered setting they break.
    let cfg = SimConfig::paper_default(DatasetProfile::Mnist);
    let detector = run(&cfg, Box::new(FlDetector::default()), AttackKind::Gd);
    let asyncfilter = run(&cfg, Box::new(AsyncFilter::default()), AttackKind::Gd);
    assert!(
        asyncfilter > detector + 0.2,
        "AsyncFilter ({asyncfilter}) should clearly beat FLDetector ({detector}) under async GD"
    );
}

#[test]
fn shape_staleness_stability() {
    // Mini Fig. 6: accuracy under GD must not collapse at any staleness limit.
    for limit in [5u64, 20] {
        let mut cfg = mid_config(DatasetProfile::FashionMnist);
        cfg.staleness_limit = limit;
        let acc = run(&cfg, Box::new(AsyncFilter::default()), AttackKind::Gd);
        assert!(acc > 0.7, "limit {limit}: accuracy {acc}");
    }
}

#[test]
#[ignore = "full paper-scale run (~1 min); use --ignored"]
fn full_scale_table2_gd_row() {
    let cfg = SimConfig::paper_default(DatasetProfile::Mnist);
    let undefended = run(&cfg, Box::new(PassthroughFilter), AttackKind::Gd);
    let defended = run(&cfg, Box::new(AsyncFilter::default()), AttackKind::Gd);
    assert!(undefended < 0.5);
    assert!(defended > 0.9, "paper-scale GD recovery: {defended}");
}

#[test]
#[ignore = "full paper-scale run (~1 min); use --ignored"]
fn full_scale_no_attack_parity() {
    let cfg = SimConfig::paper_default(DatasetProfile::Mnist);
    let fedbuff = run(&cfg, Box::new(PassthroughFilter), AttackKind::None);
    let filtered = run(&cfg, Box::new(AsyncFilter::default()), AttackKind::None);
    assert!(filtered > fedbuff - 0.01, "{filtered} vs {fedbuff}");
}

#[test]
#[ignore = "full paper-scale run (~2 min); use --ignored"]
fn full_scale_extreme_noniid_recovery() {
    // Table 7's headline: α = 0.01 GD, the paper's biggest relative win.
    let mut cfg = SimConfig::paper_default(DatasetProfile::FashionMnist);
    cfg.partitioner = Partitioner::dirichlet(0.01);
    let undefended = run(&cfg, Box::new(PassthroughFilter), AttackKind::Gd);
    let defended = run(&cfg, Box::new(AsyncFilter::default()), AttackKind::Gd);
    assert!(undefended < 0.3);
    assert!(defended > 0.6, "extreme non-IID recovery: {defended}");
}
