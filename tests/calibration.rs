//! Calibration tests: the synthetic dataset profiles must sit where the
//! substitution policy in `DESIGN.md` promises — accuracy ceilings near the
//! paper's no-attack numbers, in the paper's difficulty order.

use asyncfilter::data::DatasetProfile;
use asyncfilter::ml::train::{build_model, build_optimizer, evaluate, LocalTrainer};
use asyncfl_rng::rngs::StdRng;
use asyncfl_rng::SeedableRng;

#[test]
fn bayes_ceilings_bracket_paper_accuracies() {
    let mut rng = StdRng::seed_from_u64(99);
    for profile in DatasetProfile::ALL {
        let task = profile.build_task(&mut rng);
        let bayes = task.estimate_bayes_accuracy(6_000, &mut rng);
        let paper = profile.paper_no_attack_accuracy();
        assert!(
            bayes >= paper - 0.03 && bayes <= paper + 0.12,
            "{profile}: Bayes {bayes:.3} vs paper {paper:.3}"
        );
    }
}

#[test]
fn difficulty_order_matches_paper() {
    // MNIST > FashionMNIST > CIFAR-10 > CINIC-10, as in Tables 2–5.
    let mut rng = StdRng::seed_from_u64(100);
    let ceilings: Vec<f64> = DatasetProfile::ALL
        .iter()
        .map(|p| {
            let task = p.build_task(&mut rng);
            task.estimate_bayes_accuracy(5_000, &mut rng)
        })
        .collect();
    for pair in ceilings.windows(2) {
        assert!(pair[0] > pair[1], "difficulty order violated: {ceilings:?}");
    }
}

#[test]
fn centralized_training_approaches_ceiling_mnist() {
    let mut rng = StdRng::seed_from_u64(101);
    let profile = DatasetProfile::Mnist;
    let task = profile.build_task(&mut rng);
    let train = task.test_dataset(1_500, &mut rng);
    let test = task.test_dataset(1_500, &mut rng);
    let mut model = build_model(&profile, &task, &mut rng);
    let mut opt = build_optimizer(&profile, model.num_params());
    LocalTrainer::from_profile(&profile).train(model.as_mut(), &train, opt.as_mut(), &mut rng);
    let acc = evaluate(model.as_ref(), &test);
    let bayes = task.estimate_bayes_accuracy(3_000, &mut rng);
    assert!(
        acc > bayes - 0.05,
        "centralized accuracy {acc:.3} too far below ceiling {bayes:.3}"
    );
}

#[test]
fn centralized_training_approaches_ceiling_cinic() {
    let mut rng = StdRng::seed_from_u64(102);
    let profile = DatasetProfile::Cinic10;
    let task = profile.build_task(&mut rng);
    let train = task.test_dataset(2_000, &mut rng);
    let test = task.test_dataset(1_500, &mut rng);
    let mut model = build_model(&profile, &task, &mut rng);
    let mut opt = build_optimizer(&profile, model.num_params());
    LocalTrainer::from_profile(&profile).train(model.as_mut(), &train, opt.as_mut(), &mut rng);
    let acc = evaluate(model.as_ref(), &test);
    let bayes = task.estimate_bayes_accuracy(3_000, &mut rng);
    // CINIC's 30% label noise costs a small model more of the ceiling than
    // the clean profiles; 15 points of slack still pins the profile at the
    // paper's ~0.5 level.
    assert!(
        acc > bayes - 0.15 && acc > 0.45,
        "centralized accuracy {acc:.3} too far below ceiling {bayes:.3}"
    );
}

#[test]
fn dirichlet_partitions_are_skewed_iid_are_not() {
    use asyncfilter::data::partition::Partitioner;
    let mut rng = StdRng::seed_from_u64(103);
    let task = DatasetProfile::Mnist.build_task(&mut rng);
    let max_share = |p: &Partitioner, rng: &mut StdRng| {
        let ds = task.client_dataset(p, 0, 300, rng);
        *ds.label_histogram().iter().max().unwrap() as f64 / 300.0
    };
    let mut iid_total = 0.0;
    let mut dir_total = 0.0;
    for _ in 0..10 {
        iid_total += max_share(&Partitioner::iid(), &mut rng);
        dir_total += max_share(&Partitioner::dirichlet(0.01), &mut rng);
    }
    assert!(
        dir_total > iid_total * 2.0,
        "Dirichlet(0.01) not skewed enough: {dir_total} vs {iid_total}"
    );
}
