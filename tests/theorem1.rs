//! Empirical validation of the paper's Theorem 1 (§4.5): under a GD-style
//! reversal attack, the expected suspicious score of a benign client is
//! smaller than that of a malicious attacker.
//!
//! We run the full pipeline (non-IID data, staleness, FedAvg-style mean
//! aggregation, GD attack with the theorem's λ = 1 reversal) and compare
//! the mean AsyncFilter score of benign vs malicious updates across all
//! rounds.

use asyncfilter::attacks::GradientDeviationAttack;
use asyncfilter::core::aggregation::MeanAggregator;
use asyncfilter::core::asyncfilter::ScoreRecord;
use asyncfilter::prelude::*;
use std::sync::{Arc, Mutex};

/// Wraps AsyncFilter and archives the score records of every round.
struct ScoreArchive {
    inner: AsyncFilter,
    records: Arc<Mutex<Vec<ScoreRecord>>>,
}

impl UpdateFilter for ScoreArchive {
    fn name(&self) -> &str {
        "ScoreArchive"
    }

    fn filter(&mut self, updates: Vec<ClientUpdate>, ctx: &FilterContext<'_>) -> FilterOutcome {
        let outcome = self.inner.filter(updates, ctx);
        self.records
            .lock()
            .unwrap()
            .extend_from_slice(self.inner.last_scores());
        outcome
    }
}

fn mean_scores_by_truth(records: &[ScoreRecord]) -> (f64, f64) {
    let benign: Vec<f64> = records
        .iter()
        .filter(|r| !r.truth_malicious)
        .map(|r| r.score)
        .collect();
    let malicious: Vec<f64> = records
        .iter()
        .filter(|r| r.truth_malicious)
        .map(|r| r.score)
        .collect();
    (
        benign.iter().sum::<f64>() / benign.len().max(1) as f64,
        malicious.iter().sum::<f64>() / malicious.len().max(1) as f64,
    )
}

#[test]
fn expected_benign_score_below_expected_malicious_score() {
    let mut cfg = SimConfig::smoke_test();
    cfg.num_clients = 20;
    cfg.num_malicious = 4;
    cfg.aggregation_bound = 10;
    cfg.rounds = 12;
    cfg.partitioner = Partitioner::dirichlet(0.1); // the theorem's non-IID setting

    let records = Arc::new(Mutex::new(Vec::new()));
    let filter = ScoreArchive {
        inner: AsyncFilter::default(),
        records: Arc::clone(&records),
    };
    // Theorem 1's attack: each malicious client sends −δ (λ = 1), with
    // FedAvg-style mean aggregation.
    let mut sim = Simulation::new(cfg);
    let _ = sim.run_with(
        Box::new(filter),
        Box::new(GradientDeviationAttack::new(1.0)),
        Box::new(MeanAggregator::new()),
    );

    let records = records.lock().unwrap();
    assert!(
        records.len() > 50,
        "too few scored updates: {}",
        records.len()
    );
    let (benign, malicious) = mean_scores_by_truth(&records);
    assert!(
        benign < malicious,
        "Theorem 1 violated empirically: E[benign score] = {benign:.4} \
         >= E[malicious score] = {malicious:.4} over {} records",
        records.len()
    );
}

#[test]
fn score_gap_grows_with_attack_strength() {
    // A stronger reversal (larger λ) must widen the benign/malicious score
    // gap — the monotonicity the theorem's proof sketch relies on.
    let gap = |lambda: f64| {
        let mut cfg = SimConfig::smoke_test();
        cfg.num_clients = 20;
        cfg.num_malicious = 4;
        cfg.aggregation_bound = 10;
        cfg.rounds = 10;
        let records = Arc::new(Mutex::new(Vec::new()));
        let filter = ScoreArchive {
            inner: AsyncFilter::default(),
            records: Arc::clone(&records),
        };
        let mut sim = Simulation::new(cfg);
        let _ = sim.run_with(
            Box::new(filter),
            Box::new(GradientDeviationAttack::new(lambda)),
            Box::new(MeanAggregator::new()),
        );
        let records = records.lock().unwrap();
        let (benign, malicious) = mean_scores_by_truth(&records);
        malicious - benign
    };
    let weak = gap(1.0);
    let strong = gap(8.0);
    assert!(
        strong > weak,
        "gap should grow with lambda: weak {weak:.4} strong {strong:.4}"
    );
}

#[test]
fn assumption_constants_estimable_from_a_real_run() {
    use asyncfilter::analysis::experiment::RecordingFilter;
    use asyncfilter::analysis::theory::estimate_constants;

    let mut cfg = SimConfig::smoke_test();
    cfg.num_malicious = 0; // honest population, as the assumptions require
    cfg.rounds = 10;
    cfg.partitioner = Partitioner::dirichlet(0.1);
    let recorder = RecordingFilter::new();
    let log = recorder.log_handle();
    Simulation::new(cfg).run(Box::new(recorder), AttackKind::None);

    let observations: Vec<(usize, Vector)> = log
        .lock()
        .unwrap()
        .iter()
        .map(|r| (r.client, r.delta.clone()))
        .collect();
    let constants = estimate_constants(&observations).expect("estimable");
    assert!(constants.a.is_finite() && constants.a > 0.0);
    assert!(constants.sigma_g_max > 0.0);
    assert!(constants.sigma_l_max >= constants.sigma_l_min);
    // At Dirichlet(0.1) heterogeneity the premise is a real constraint —
    // record whether it holds rather than assert a direction, but the
    // bound itself must be sane.
    assert!(constants.premise_bound >= (2.0f64).sqrt());
}
