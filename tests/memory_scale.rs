//! Memory-flatness regression test for lazy client materialization
//! (DESIGN.md §11).
//!
//! The scale contract: a run's resident client state grows with the
//! in-flight set and the spawner's shard-cache capacity, **not** with
//! `num_clients`. The eager engine held every client's dataset, RNG and
//! factor in `O(num_clients)` `Vec`s (~1.3 KB/client at these settings);
//! the lazy engine keeps one lightweight heap entry per client (~200 B)
//! and a bounded shard cache. Scaling the population 100× must therefore
//! cost well under the eager design's per-client footprint — the
//! assertions below fail if anyone reintroduces a heavy per-client array.

use asyncfilter::prelude::*;
use std::sync::Arc;

#[global_allocator]
static ALLOC: asyncfilter::telemetry::alloc::CountingAllocator =
    asyncfilter::telemetry::alloc::CountingAllocator::new();

/// Tiny per-client shards and a fixed small shard cache, so the only thing
/// that scales between the two runs is the client population itself.
fn scale_config(num_clients: usize) -> SimConfig {
    let mut cfg = SimConfig::smoke_test();
    cfg.num_clients = num_clients;
    cfg.num_malicious = num_clients / 10;
    cfg.aggregation_bound = 32;
    cfg.rounds = 2;
    cfg.eval_every = 2;
    cfg.partition_size = Some(4);
    cfg.test_samples = 100;
    cfg.shard_cache_capacity = Some(64);
    cfg
}

/// Runs the config and returns (peak live bytes afterwards, max
/// `resident_client_states` gauge sample, final shard-cache occupancy).
fn run_and_measure(num_clients: usize) -> (u64, u64, usize) {
    let mem = Arc::new(MemorySink::new(100_000));
    let sink = SharedSink::from_arc(Arc::clone(&mem) as Arc<dyn Sink>);
    let mut sim = Simulation::new(scale_config(num_clients));
    let result = sim.run_with_sink(
        Box::new(PassthroughFilter),
        AttackKind::None.build(num_clients, num_clients / 10),
        Box::new(MeanAggregator::new()),
        Some(sink),
    );
    assert_eq!(result.rounds_completed, 2, "run at {num_clients} clients");
    let max_resident = mem
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::GaugeSample {
                name: "resident_client_states",
                value,
            } => Some(*value),
            _ => None,
        })
        .max()
        .expect("at least one gauge sample per aggregation");
    let resident_after = sim.spawner().resident_states();
    (
        asyncfilter::telemetry::alloc::peak_live_bytes(),
        max_resident,
        resident_after,
    )
}

#[test]
fn resident_memory_grows_with_cache_not_population() {
    // One test function: the allocator peak is process-global and
    // monotonic, so the small run must complete (and set its peak) before
    // the large run starts.
    let (small_peak, small_resident, small_after) = run_and_measure(1_000);
    let (large_peak, large_resident, large_after) = run_and_measure(100_000);

    // The shard cache — the only materialized client state — stays at its
    // configured bound regardless of population.
    assert!(
        small_resident <= 64,
        "1k-client run exceeded the shard-cache bound: {small_resident}"
    );
    assert!(
        large_resident <= 64,
        "100k-client run exceeded the shard-cache bound: {large_resident}"
    );
    assert!(small_after <= 64 && large_after <= 64);

    // Scaling the population 100× may only add the lightweight per-client
    // heap entries (completion time, seq, Arc pointer, RNG state, factor —
    // no datasets). 512 B/client is ~2.5× the real entry size and well
    // under the ~1.3 KB/client the eager per-client `Vec`s would add.
    let added = large_peak.saturating_sub(small_peak);
    let budget = 100_000u64 * 512;
    assert!(
        added <= budget,
        "peak grew by {added} bytes for 99k extra clients (budget {budget}): \
         resident client state is scaling with num_clients again"
    );
}
