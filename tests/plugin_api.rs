//! The "plug-and-play" contract: third-party filters and alternative
//! aggregation rules drop into the runtime without touching it.

use asyncfilter::core::aggregation::{
    Aggregator, KrumAggregator, MeanAggregator, MedianAggregator, TrimmedMeanAggregator,
};
use asyncfilter::core::zeno::{AflGuard, ZenoPlusPlus};
use asyncfilter::prelude::*;
use asyncfilter::sim::runner::build_attack;

fn small_config() -> SimConfig {
    let mut cfg = SimConfig::smoke_test();
    cfg.rounds = 6;
    cfg.test_samples = 400;
    cfg
}

/// A deliberately trivial third-party filter: accepts everything but counts
/// calls — proves the trait boundary is all a defense needs.
struct CountingFilter {
    calls: usize,
}

impl UpdateFilter for CountingFilter {
    fn name(&self) -> &str {
        "Counting"
    }

    fn filter(&mut self, updates: Vec<ClientUpdate>, _ctx: &FilterContext<'_>) -> FilterOutcome {
        self.calls += 1;
        FilterOutcome::accept_all(updates)
    }
}

#[test]
fn custom_filter_plugs_into_the_server() {
    let mut sim = Simulation::new(small_config());
    let result = sim.run(Box::new(CountingFilter { calls: 0 }), AttackKind::None);
    assert_eq!(result.rounds_completed, 6);
    assert!(result.final_accuracy > 0.4);
}

#[test]
fn alternative_aggregators_run_end_to_end() {
    let aggregators: Vec<Box<dyn Aggregator>> = vec![
        Box::new(MeanAggregator::new()),
        Box::new(MeanAggregator::with_polynomial_staleness(0.5)),
        Box::new(MedianAggregator),
        Box::new(TrimmedMeanAggregator::new(0.2)),
        Box::new(KrumAggregator::multi(3, 4)),
    ];
    for aggregator in aggregators {
        let name = aggregator.name().to_string();
        let mut sim = Simulation::new(small_config());
        let attack = build_attack(AttackKind::None, 16, 3);
        let result = sim.run_with(Box::new(PassthroughFilter), attack, aggregator);
        assert!(
            result.final_accuracy > 0.3,
            "{name}: accuracy {}",
            result.final_accuracy
        );
    }
}

#[test]
fn robust_aggregators_resist_gd_better_than_mean() {
    let mut cfg = small_config();
    cfg.rounds = 10;
    cfg.num_malicious = 4;
    let run = |aggregator: Box<dyn Aggregator>| {
        let mut sim = Simulation::new(cfg.clone());
        let attack = build_attack(AttackKind::Gd, cfg.num_clients, cfg.num_malicious);
        sim.run_with(Box::new(PassthroughFilter), attack, aggregator)
            .final_accuracy
    };
    let mean = run(Box::new(MeanAggregator::new()));
    let median = run(Box::new(MedianAggregator));
    assert!(
        median > mean + 0.1,
        "median ({median}) should beat mean ({mean}) under GD"
    );
}

#[test]
fn clean_dataset_baselines_need_a_root_dataset() {
    // Without a server root dataset the prior-work defenses degrade to
    // passthrough (the paper's point about their assumption).
    let mut sim = Simulation::new(small_config());
    let blind = sim.run(Box::new(ZenoPlusPlus::new()), AttackKind::Gd);
    let mut with_root = small_config();
    with_root.server_root_samples = 128;
    with_root.rounds = 10;
    let mut sim = Simulation::new(with_root.clone());
    let zeno = sim.run(Box::new(ZenoPlusPlus::new()), AttackKind::Gd);
    let mut sim = Simulation::new(with_root);
    let guard = sim.run(Box::new(AflGuard::default()), AttackKind::Gd);
    // With a trusted dataset, both filter effectively under GD.
    assert!(
        zeno.final_accuracy > blind.final_accuracy,
        "Zeno++ with root data ({}) should beat blind ({})",
        zeno.final_accuracy,
        blind.final_accuracy
    );
    assert!(zeno.detection.recall() > 0.5, "{:?}", zeno.detection);
    assert!(guard.detection.recall() > 0.5, "{:?}", guard.detection);
}

#[test]
fn asyncfilter_variants_construct_and_run() {
    use asyncfilter::core::asyncfilter::{
        AsyncFilterConfig, MovingAverageMode, ScoreNormalization,
    };
    let variants = [
        AsyncFilterConfig::default(),
        AsyncFilterConfig::two_means(),
        AsyncFilterConfig {
            middle_policy: MiddlePolicy::Accept,
            ..Default::default()
        },
        AsyncFilterConfig {
            middle_policy: MiddlePolicy::Reject,
            ..Default::default()
        },
        AsyncFilterConfig {
            ma_mode: MovingAverageMode::RobbinsMonro,
            ..Default::default()
        },
        AsyncFilterConfig {
            score_normalization: ScoreNormalization::WithinGroup,
            ..Default::default()
        },
        AsyncFilterConfig {
            score_normalization: ScoreNormalization::CrossGroup,
            ..Default::default()
        },
        AsyncFilterConfig {
            staleness_bucket: 4,
            ..Default::default()
        },
    ];
    for config in variants {
        let mut cfg = small_config();
        cfg.rounds = 4;
        let label = format!("{config:?}");
        let mut sim = Simulation::new(cfg);
        let result = sim.run(Box::new(AsyncFilter::new(config)), AttackKind::Gd);
        assert_eq!(result.rounds_completed, 4, "{label}");
        assert!(result.final_accuracy.is_finite(), "{label}");
    }
}

#[test]
fn reputation_wrapper_bans_persistent_attackers() {
    use asyncfilter::core::reputation::ReputationFilter;
    let mut cfg = small_config();
    cfg.rounds = 12;
    cfg.num_malicious = 4;
    let mut sim = Simulation::new(cfg);
    let filter = ReputationFilter::new(Box::new(AsyncFilter::default()), 3, 20);
    let result = sim.run(Box::new(filter), AttackKind::Gd);
    // Banned attackers are auto-rejected, so recall should be healthy by
    // the end of the run.
    assert!(
        result.detection.recall() > 0.3,
        "reputation recall {} ({:?})",
        result.detection.recall(),
        result.detection
    );
    assert_eq!(result.rounds_completed, 12);
}

#[test]
fn run_result_round_reports_cover_every_round() {
    let mut cfg = small_config();
    cfg.rounds = 6;
    let result = Simulation::new(cfg).run(Box::new(AsyncFilter::default()), AttackKind::Gd);
    assert_eq!(result.round_reports.len(), 6);
    for report in &result.round_reports {
        assert!(report.accepted + report.rejected + report.deferred > 0);
    }
}
