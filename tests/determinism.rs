//! Determinism regression tests — the runtime counterpart of the `D1`/`D2`
//! lints (`docs/LINTS.md`).
//!
//! AsyncFilter's accept/defer/reject verdicts must be a pure function of
//! (seed, inputs): the paper's detection-quality tables are only meaningful
//! if a rerun reproduces them bit-for-bit. Two properties are pinned here:
//!
//! 1. **Run-level**: the same seeded simulation executed twice yields
//!    byte-identical round reports and filter-verdict traces.
//! 2. **Batch-level**: within one aggregation buffer, the arrival *order*
//!    of updates must not change any client's verdict — the filter's
//!    geometry (eqs. 4–7) is a function of the buffer as a set.

use asyncfilter::prelude::*;
use asyncfilter::sim::runner::build_attack;
use asyncfilter::sim::schedule::SchedulerKind;
use std::sync::Arc;

// Run the determinism pins with allocation accounting live: the counting
// allocator is observer-only, so verdict traces must stay byte-identical
// with it installed (threads=1 and threads=4 both covered below).
#[global_allocator]
static ALLOC: asyncfilter::telemetry::alloc::CountingAllocator =
    asyncfilter::telemetry::alloc::CountingAllocator::new();

fn small_config() -> SimConfig {
    let mut cfg = SimConfig::smoke_test();
    cfg.num_clients = 16;
    cfg.num_malicious = 4;
    cfg.aggregation_bound = 8;
    cfg.rounds = 8;
    cfg.test_samples = 200;
    cfg
}

/// One traced run: `RunResult` plus the full filter-verdict event stream.
fn traced_run(seed: u64) -> (RunResult, Vec<Event>) {
    traced_run_threaded(seed, 1)
}

/// As [`traced_run`], with an explicit worker-thread count.
fn traced_run_threaded(seed: u64, threads: usize) -> (RunResult, Vec<Event>) {
    traced_run_scheduled(seed, threads, SchedulerKind::Wheel)
}

/// As [`traced_run_threaded`], with an explicit event-queue scheduler.
fn traced_run_scheduled(
    seed: u64,
    threads: usize,
    scheduler: SchedulerKind,
) -> (RunResult, Vec<Event>) {
    let mem = Arc::new(MemorySink::new(100_000));
    let sink = SharedSink::from_arc(Arc::clone(&mem) as Arc<dyn Sink>);
    let mut sim = Simulation::new(
        small_config()
            .with_seed(seed)
            .with_threads(threads)
            .with_scheduler(scheduler),
    );
    let attack = build_attack(
        AttackKind::Gd,
        sim.config().num_clients,
        sim.config().num_malicious,
    );
    let result = sim.run_with_sink(
        Box::new(AsyncFilter::default()),
        attack,
        Box::new(MeanAggregator::new()),
        Some(sink),
    );
    let verdicts: Vec<Event> = mem
        .events()
        .into_iter()
        .filter(|e| matches!(e, Event::FilterScore { .. }))
        .collect();
    (result, verdicts)
}

#[test]
fn seeded_runs_replay_byte_identically() {
    let (first, first_verdicts) = traced_run(42);
    let (second, second_verdicts) = traced_run(42);

    // The whole result must match structurally…
    assert_eq!(first, second);
    // …and the filtering trace must match byte-for-byte, not just "close":
    // Debug formatting captures every f64 bit pattern that differs.
    assert_eq!(
        format!("{:?}", first.round_reports),
        format!("{:?}", second.round_reports)
    );
    assert_eq!(
        format!("{first_verdicts:?}"),
        format!("{second_verdicts:?}"),
        "per-update filter verdicts diverged between identical seeded runs"
    );
    // Sanity: the trace is non-trivial (the filter actually judged updates).
    assert!(!first_verdicts.is_empty());
}

#[test]
fn worker_pool_replays_byte_identically() {
    // Dispatch-time determinism: with threads > 1 the engine trains
    // in-flight clients eagerly on a worker pool, but consumes completions
    // in the same heap order — so the parallel run must match the
    // sequential one bit-for-bit, not just statistically.
    let (sequential, sequential_verdicts) = traced_run_threaded(42, 1);
    let (parallel, parallel_verdicts) = traced_run_threaded(42, 4);

    assert_eq!(sequential, parallel);
    assert_eq!(sequential.final_accuracy, parallel.final_accuracy);
    assert_eq!(
        format!("{:?}", sequential.round_reports),
        format!("{:?}", parallel.round_reports),
        "round reports diverged between threads=1 and threads=4"
    );
    assert_eq!(
        format!("{sequential_verdicts:?}"),
        format!("{parallel_verdicts:?}"),
        "per-update filter verdicts diverged between threads=1 and threads=4"
    );
    assert!(!sequential_verdicts.is_empty());
}

#[test]
fn wheel_scheduler_replays_byte_identically() {
    // Run-level determinism pin for the default calendar-queue scheduler
    // (DESIGN.md §12): two identically seeded runs through the wheel must
    // agree bit-for-bit, exactly as the heap-backed engine always has.
    let (first, first_verdicts) = traced_run_scheduled(42, 1, SchedulerKind::Wheel);
    let (second, second_verdicts) = traced_run_scheduled(42, 1, SchedulerKind::Wheel);
    assert_eq!(first, second);
    assert_eq!(
        format!("{first_verdicts:?}"),
        format!("{second_verdicts:?}"),
        "wheel-scheduled filter verdicts diverged between identical seeded runs"
    );
    assert!(!first_verdicts.is_empty());
}

#[test]
fn heap_twin_replays_byte_identically() {
    // The binary-heap differential twin stays a first-class citizen: the
    // same run-level pin holds when the heap is selected explicitly.
    let (first, first_verdicts) = traced_run_scheduled(42, 1, SchedulerKind::Heap);
    let (second, second_verdicts) = traced_run_scheduled(42, 1, SchedulerKind::Heap);
    assert_eq!(first, second);
    assert_eq!(
        format!("{first_verdicts:?}"),
        format!("{second_verdicts:?}"),
        "heap-scheduled filter verdicts diverged between identical seeded runs"
    );
    assert!(!first_verdicts.is_empty());
}

#[test]
fn wheel_and_heap_schedulers_agree_byte_identically() {
    // Differential pin: the calendar queue must pop the event stream in
    // exactly the heap's (completes_at, seq) order, so entire runs — round
    // reports and every per-update verdict — match bit-for-bit across the
    // two schedulers, at threads=1 and on the worker pool.
    for threads in [1, 4] {
        let (wheel, wheel_verdicts) = traced_run_scheduled(42, threads, SchedulerKind::Wheel);
        let (heap, heap_verdicts) = traced_run_scheduled(42, threads, SchedulerKind::Heap);
        assert_eq!(wheel, heap, "run results diverged at threads={threads}");
        assert_eq!(
            format!("{:?}", wheel.round_reports),
            format!("{:?}", heap.round_reports),
            "round reports diverged between wheel and heap at threads={threads}"
        );
        assert_eq!(
            format!("{wheel_verdicts:?}"),
            format!("{heap_verdicts:?}"),
            "filter verdicts diverged between wheel and heap at threads={threads}"
        );
        assert!(!wheel_verdicts.is_empty());
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against the trivial failure mode where determinism holds
    // because the seed is ignored entirely.
    let (a, _) = traced_run(42);
    let (b, _) = traced_run(43);
    assert_ne!(a.final_accuracy, b.final_accuracy);
}

/// A buffer with clearly separated benign/outlier geometry and distinct
/// score values (so 3-means has no ties for the shuffle to exploit).
fn batch() -> Vec<ClientUpdate> {
    let base = Vector::zeros(3);
    let mut updates: Vec<ClientUpdate> = (0..9)
        .map(|c| {
            let delta = Vector::from(vec![1.0 + 0.03 * c as f64, 0.5 - 0.01 * c as f64, 0.2]);
            ClientUpdate::from_delta(c, 0, 0, &base, delta, 10)
        })
        .collect();
    updates.push(ClientUpdate::from_delta(
        9,
        0,
        0,
        &base,
        Vector::from(vec![80.0, -40.0, 60.0]),
        10,
    ));
    updates
}

/// Sorted `(client, verdict)` pairs plus client-sorted scores for one
/// freshly created filter fed `updates` in the given order.
fn verdict_fingerprint(updates: Vec<ClientUpdate>) -> (Vec<(usize, &'static str)>, Vec<f64>) {
    let mut filter = AsyncFilter::default();
    let global = Vector::zeros(3);
    let ctx = FilterContext::new(0, &global, 20);
    let outcome = filter.filter(updates, &ctx);
    let mut verdicts: Vec<(usize, &'static str)> = Vec::new();
    for u in &outcome.accepted {
        verdicts.push((u.client, "accept"));
    }
    for u in &outcome.rejected {
        verdicts.push((u.client, "reject"));
    }
    for u in &outcome.deferred {
        verdicts.push((u.client, "defer"));
    }
    verdicts.sort_unstable();
    let mut scores: Vec<(usize, f64)> = filter
        .last_scores()
        .iter()
        .map(|r| (r.client, r.score))
        .collect();
    scores.sort_by_key(|&(client, _)| client);
    (verdicts, scores.into_iter().map(|(_, s)| s).collect())
}

#[test]
fn within_batch_arrival_order_is_irrelevant() {
    let (ref_verdicts, ref_scores) = verdict_fingerprint(batch());
    // Several deterministic permutations: reversal and all rotations.
    let mut permutations: Vec<Vec<ClientUpdate>> = Vec::new();
    let mut reversed = batch();
    reversed.reverse();
    permutations.push(reversed);
    for rot in 1..batch().len() {
        let mut rotated = batch();
        rotated.rotate_left(rot);
        permutations.push(rotated);
    }
    for (i, perm) in permutations.into_iter().enumerate() {
        let (verdicts, scores) = verdict_fingerprint(perm);
        // Verdicts must match byte-for-byte: the accept/defer/reject
        // decision is what the paper's detection tables are built from.
        assert_eq!(verdicts, ref_verdicts, "permutation {i} changed a verdict");
        // Scores may differ in the final ulp (eq. 7 sums squared distances
        // in arrival order and float addition is not associative), but any
        // drift beyond that is a real order-dependence bug.
        for (s, r) in scores.iter().zip(&ref_scores) {
            assert!(
                (s - r).abs() <= 1e-12,
                "permutation {i} moved a score beyond rounding: {s} vs {r}"
            );
        }
    }
    // Sanity: the scenario is non-trivial — the outlier is actually singled
    // out by the reference run.
    assert!(ref_verdicts
        .iter()
        .any(|&(c, v)| c == 9 && (v == "reject" || v == "defer")));
}
