//! End-to-end telemetry contract: the event stream a run emits must
//! reconcile exactly with the `RunResult` it returns, on both engines,
//! and the JSONL encoding must be parseable line-by-line.

use asyncfilter::prelude::*;
use asyncfilter::sim::runner::build_attack;
use asyncfilter::sim::threaded::run_threaded_with_sink;
use asyncfilter::telemetry::JsonlSink;
use std::sync::Arc;

// Install the counting allocator so span_closed events in this binary carry
// real alloc_bytes numbers (without it the fields are 0 = "not measured").
#[global_allocator]
static ALLOC: asyncfilter::telemetry::alloc::CountingAllocator =
    asyncfilter::telemetry::alloc::CountingAllocator::new();

fn small_config() -> SimConfig {
    let mut cfg = SimConfig::smoke_test();
    cfg.rounds = 6;
    cfg.test_samples = 400;
    cfg
}

fn traced_run(filter: Box<dyn UpdateFilter>, attack: AttackKind) -> (RunResult, Arc<MemorySink>) {
    let mem = Arc::new(MemorySink::new(100_000));
    let sink = SharedSink::from_arc(Arc::clone(&mem) as Arc<dyn Sink>);
    let mut sim = Simulation::new(small_config());
    let built = build_attack(attack, sim.config().num_clients, sim.config().num_malicious);
    let result = sim.run_with_sink(filter, built, Box::new(MeanAggregator::new()), Some(sink));
    (result, mem)
}

#[test]
fn event_counts_reconcile_with_run_result() {
    let (result, mem) = traced_run(Box::new(AsyncFilter::default()), AttackKind::Gd);
    assert_eq!(mem.dropped(), 0, "ring must not overflow in this test");

    assert_eq!(
        mem.count_kind("update_received") as u64,
        result.updates_received
    );
    assert_eq!(
        mem.count_kind("update_discarded_stale") as u64,
        result.updates_discarded_stale
    );
    assert_eq!(
        mem.count_kind("aggregation_completed"),
        result.round_reports.len()
    );
    assert_eq!(
        mem.count_kind("accuracy_checkpoint"),
        result.accuracy_history.len()
    );

    // Per-round aggregation events replay round_reports in order.
    let agg_events: Vec<(u64, usize, usize, usize)> = mem
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::AggregationCompleted {
                round,
                accepted,
                rejected,
                deferred,
            } => Some((round, accepted, rejected, deferred)),
            _ => None,
        })
        .collect();
    let reports: Vec<(u64, usize, usize, usize)> = result
        .round_reports
        .iter()
        .map(|r| (r.round_completed, r.accepted, r.rejected, r.deferred))
        .collect();
    assert_eq!(agg_events, reports);

    // FilterScore verdicts reconcile with the confusion matrix: the
    // confusion matrix counts *terminal* verdicts only, so rejected events
    // are exactly TP+FP and accepted events exactly FN+TN. Deferred events
    // are re-filtering passes of the same update and stay outside the
    // matrix (a deferred update that later ages out never gets a terminal
    // verdict at all).
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut deferred = 0u64;
    for e in mem.events() {
        if let Event::FilterScore { verdict, .. } = e {
            match verdict {
                Verdict::Accepted => accepted += 1,
                Verdict::Rejected => rejected += 1,
                Verdict::Deferred => deferred += 1,
            }
        }
    }
    let d = result.detection;
    assert_eq!(
        rejected,
        (d.true_positives + d.false_positives) as u64,
        "rejected verdicts must equal TP+FP"
    );
    assert_eq!(
        accepted,
        (d.false_negatives + d.true_negatives) as u64,
        "accepted verdicts must equal FN+TN"
    );
    let per_round: (usize, usize, usize) = result
        .round_reports
        .iter()
        .fold((0, 0, 0), |(a, r, de), rep| {
            (a + rep.accepted, r + rep.rejected, de + rep.deferred)
        });
    assert_eq!(
        (accepted as usize, rejected as usize, deferred as usize),
        per_round,
        "verdict totals must equal the summed round reports"
    );
}

#[test]
fn every_filter_emits_scored_verdicts() {
    // The passthrough baseline never scores, but the server still derives a
    // verdict per update, so traces stay comparable across defenses.
    let (result, mem) = traced_run(Box::new(PassthroughFilter), AttackKind::None);
    let scores = mem.count_kind("filter_score");
    assert!(scores > 0);
    let d = result.detection;
    assert_eq!(scores, d.total());
}

#[test]
fn jsonl_trace_is_parseable() {
    let path =
        std::env::temp_dir().join(format!("asyncfl-trace-test-{}.jsonl", std::process::id()));
    let jsonl = Arc::new(JsonlSink::create(&path).expect("create trace file"));
    let sink = SharedSink::from_arc(Arc::clone(&jsonl) as Arc<dyn Sink>);
    let mut sim = Simulation::new(small_config());
    let built = build_attack(
        AttackKind::Gd,
        sim.config().num_clients,
        sim.config().num_malicious,
    );
    sim.run_with_sink(
        Box::new(AsyncFilter::default()),
        built,
        Box::new(MeanAggregator::new()),
        Some(sink),
    );
    jsonl.flush().expect("flush trace");
    assert_eq!(jsonl.io_errors(), 0);

    let body = std::fs::read_to_string(&path).expect("read trace back");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len() as u64, jsonl.lines_written());
    assert!(!lines.is_empty());
    for line in lines {
        assert!(
            parse_json_object(line),
            "trace line is not a valid JSON object: {line}"
        );
        assert!(line.contains("\"type\":\""), "missing type tag: {line}");
    }
}

#[test]
fn counters_gauges_and_alloc_spans_round_trip_through_jsonl() {
    // Direct emission: every new event kind must encode as one valid JSON
    // object per line with its fields intact.
    let path =
        std::env::temp_dir().join(format!("asyncfl-gauge-trace-{}.jsonl", std::process::id()));
    let jsonl = Arc::new(JsonlSink::create(&path).expect("create trace file"));
    jsonl.emit(&Event::CounterAdd {
        name: "deferred_requeued",
        delta: 3,
    });
    jsonl.emit(&Event::GaugeSample {
        name: "buffer_occupancy",
        value: 17,
    });
    jsonl.emit(&Event::SpanClosed {
        name: "filter",
        nanos: 1_234,
        alloc_bytes: 4_096,
        peak_live_bytes: 65_536,
    });
    jsonl.flush().expect("flush trace");
    assert_eq!(jsonl.io_errors(), 0);

    let body = std::fs::read_to_string(&path).expect("read trace back");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 3);
    for line in &lines {
        assert!(parse_json_object(line), "not a JSON object: {line}");
    }
    assert!(
        lines[0].contains("\"type\":\"counter_add\""),
        "{}",
        lines[0]
    );
    assert!(
        lines[0].contains("\"name\":\"deferred_requeued\"") && lines[0].contains("\"delta\":3"),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"type\":\"gauge_sample\""),
        "{}",
        lines[1]
    );
    assert!(
        lines[1].contains("\"name\":\"buffer_occupancy\"") && lines[1].contains("\"value\":17"),
        "{}",
        lines[1]
    );
    assert!(
        lines[2].contains("\"type\":\"span_closed\""),
        "{}",
        lines[2]
    );
    assert!(
        lines[2].contains("\"alloc_bytes\":4096") && lines[2].contains("\"peak_live_bytes\":65536"),
        "{}",
        lines[2]
    );
}

#[test]
fn traced_runs_carry_gauges_and_alloc_annotated_spans() {
    // A real simulation now samples server/engine gauges once per
    // aggregation and attributes allocations to spans — and the verdict
    // reconciliation that detection --trace enforces must survive the
    // extra event kinds.
    let (result, mem) = traced_run(Box::new(AsyncFilter::default()), AttackKind::Gd);
    assert_eq!(mem.dropped(), 0);

    let gauge_names: std::collections::BTreeSet<&'static str> = mem
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::GaugeSample { name, .. } => Some(name),
            _ => None,
        })
        .collect();
    for expected in [
        "buffer_occupancy",
        "deferred_queue_depth",
        "event_queue_depth",
        "resident_client_states",
        "alloc_live_bytes",
    ] {
        assert!(gauge_names.contains(expected), "missing gauge {expected}");
    }

    // With the counting allocator installed, the run's spans must observe
    // real allocation traffic (filter/aggregate both build Vecs).
    assert!(asyncfilter::telemetry::alloc::is_active());
    let span_alloc_total: u64 = mem
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::SpanClosed { alloc_bytes, .. } => Some(alloc_bytes),
            _ => None,
        })
        .sum();
    assert!(span_alloc_total > 0, "spans must attribute allocations");

    // The same terminal-verdict reconciliation the detection binary's
    // --trace exit check performs.
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for e in mem.events() {
        if let Event::FilterScore { verdict, .. } = e {
            match verdict {
                Verdict::Accepted => accepted += 1,
                Verdict::Rejected => rejected += 1,
                Verdict::Deferred => {}
            }
        }
    }
    let d = result.detection;
    assert_eq!(rejected, (d.true_positives + d.false_positives) as u64);
    assert_eq!(accepted, (d.false_negatives + d.true_negatives) as u64);
}

#[test]
fn threaded_engine_reports_through_the_same_sink() {
    let mem = Arc::new(MemorySink::new(100_000));
    let sink = SharedSink::from_arc(Arc::clone(&mem) as Arc<dyn Sink>);
    let result = run_threaded_with_sink(
        small_config(),
        Box::new(AsyncFilter::default()),
        AttackKind::Gd,
        Some(sink),
    );
    assert_eq!(
        mem.count_kind("update_received") as u64,
        result.updates_received
    );
    // Terminal verdicts only: deferred FilterScore events are re-filtering
    // passes and are not counted by the confusion matrix.
    let terminal = mem
        .events()
        .into_iter()
        .filter(|e| {
            matches!(
                e,
                Event::FilterScore {
                    verdict: Verdict::Accepted | Verdict::Rejected,
                    ..
                }
            )
        })
        .count();
    assert_eq!(terminal, result.detection.total());
    // The wall-clock engine may evaluate the same round from several client
    // threads; the deduplicated history is a lower bound.
    assert!(mem.count_kind("accuracy_checkpoint") >= result.accuracy_history.len());
    assert!(mem.count_kind("span_closed") > 0, "spans must time the run");
}

/// A tiny validating JSON parser — enough to prove each trace line is
/// well-formed without pulling in a JSON dependency.
fn parse_json_object(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let ok = parse_value(bytes, &mut pos);
    skip_ws(bytes, &mut pos);
    ok && pos == bytes.len() && s.starts_with('{')
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_delimited(b, pos, b'}', |b, pos| {
            parse_string(b, pos) && eat(b, pos, b':') && parse_value(b, pos)
        }),
        Some(b'[') => parse_delimited(b, pos, b']', parse_value),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => eat_word(b, pos, b"true"),
        Some(b'f') => eat_word(b, pos, b"false"),
        Some(b'n') => eat_word(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => false,
    }
}

fn parse_delimited(
    b: &[u8],
    pos: &mut usize,
    close: u8,
    mut item: impl FnMut(&[u8], &mut usize) -> bool,
) -> bool {
    *pos += 1; // opening brace/bracket
    skip_ws(b, pos);
    if b.get(*pos) == Some(&close) {
        *pos += 1;
        return true;
    }
    loop {
        if !item(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(&c) if c == close => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => *pos += 2,
            0x00..=0x1f => return false, // raw control char must be escaped
            _ => *pos += 1,
        }
    }
    false
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    *pos > start
}

fn eat(b: &[u8], pos: &mut usize, c: u8) -> bool {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        true
    } else {
        false
    }
}

fn eat_word(b: &[u8], pos: &mut usize, word: &[u8]) -> bool {
    if b.len() >= *pos + word.len() && &b[*pos..*pos + word.len()] == word {
        *pos += word.len();
        true
    } else {
        false
    }
}
