//! End-to-end integration tests spanning every crate: data → ml → sim →
//! attacks → defense.

use asyncfilter::prelude::*;

fn small_config() -> SimConfig {
    let mut cfg = SimConfig::smoke_test();
    cfg.num_clients = 16;
    cfg.num_malicious = 4;
    cfg.aggregation_bound = 8;
    cfg.rounds = 10;
    cfg.test_samples = 400;
    cfg
}

#[test]
fn full_pipeline_benign_run_learns() {
    let mut sim = Simulation::new(small_config());
    let result = sim.run(Box::new(PassthroughFilter), AttackKind::None);
    assert!(
        result.final_accuracy > 0.6,
        "accuracy {}",
        result.final_accuracy
    );
    assert_eq!(result.rounds_completed, 10);
    assert!(result.updates_received >= 80);
}

#[test]
fn gd_attack_hurts_and_asyncfilter_recovers() {
    let undefended =
        Simulation::new(small_config()).run(Box::new(PassthroughFilter), AttackKind::Gd);
    let defended =
        Simulation::new(small_config()).run(Box::new(AsyncFilter::default()), AttackKind::Gd);
    let benign = Simulation::new(small_config()).run(Box::new(PassthroughFilter), AttackKind::None);
    assert!(
        undefended.final_accuracy < benign.final_accuracy - 0.15,
        "GD had no bite: benign {} vs attacked {}",
        benign.final_accuracy,
        undefended.final_accuracy
    );
    assert!(
        defended.final_accuracy > undefended.final_accuracy + 0.1,
        "no recovery: defended {} vs undefended {}",
        defended.final_accuracy,
        undefended.final_accuracy
    );
}

#[test]
fn every_attack_kind_runs_under_every_defense() {
    for attack in AttackKind::TABLE_ORDER {
        for filter in [
            Box::new(PassthroughFilter) as Box<dyn UpdateFilter>,
            Box::new(AsyncFilter::default()),
            Box::new(FlDetector::default()),
        ] {
            let mut cfg = small_config();
            cfg.rounds = 3;
            let result = Simulation::new(cfg).run(filter, attack);
            assert_eq!(result.rounds_completed, 3, "{attack} did not finish");
            assert!(result.final_accuracy.is_finite());
        }
    }
}

#[test]
fn whole_runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(small_config().with_seed(seed));
        sim.run(Box::new(AsyncFilter::default()), AttackKind::MinMax)
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5).final_accuracy, run(6).final_accuracy);
}

#[test]
fn no_attack_accuracy_preserved_by_asyncfilter() {
    let fedbuff =
        Simulation::new(small_config()).run(Box::new(PassthroughFilter), AttackKind::None);
    let filtered =
        Simulation::new(small_config()).run(Box::new(AsyncFilter::default()), AttackKind::None);
    assert!(
        filtered.final_accuracy > fedbuff.final_accuracy - 0.1,
        "AsyncFilter costs too much without attackers: {} vs {}",
        filtered.final_accuracy,
        fedbuff.final_accuracy
    );
}

#[test]
fn detection_stats_track_ground_truth() {
    let mut cfg = small_config();
    cfg.rounds = 12;
    let result = Simulation::new(cfg).run(Box::new(AsyncFilter::default()), AttackKind::Gd);
    let d = result.detection;
    assert!(d.total() > 0);
    // Under a blatant attack the filter should reject malicious updates with
    // useful precision.
    assert!(d.true_positives > 0, "never caught a GD update: {d:?}");
    assert!(d.precision() > 0.5, "precision {} ({d:?})", d.precision());
}

#[test]
fn threaded_engine_and_des_agree_on_learnability() {
    let mut cfg = small_config();
    cfg.rounds = 6;
    let des = Simulation::new(cfg.clone()).run(Box::new(AsyncFilter::default()), AttackKind::None);
    let threaded = run_threaded(cfg, Box::new(AsyncFilter::default()), AttackKind::None);
    assert!(des.final_accuracy > 0.5);
    assert!(threaded.final_accuracy > 0.5);
    assert!(threaded.rounds_completed >= 6);
}

#[test]
fn staleness_limit_bounds_buffered_updates() {
    let mut cfg = small_config();
    cfg.staleness_limit = 2;
    cfg.zipf_levels = 8; // more stragglers → more discards
    let result = Simulation::new(cfg).run(Box::new(PassthroughFilter), AttackKind::None);
    assert!(result.staleness_histogram.keys().all(|&tau| tau <= 2));
    assert!(
        result.updates_discarded_stale > 0,
        "expected some stale discards with limit 2"
    );
}
