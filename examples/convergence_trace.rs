//! Accuracy trajectories under attack, as terminal sparklines.
//!
//! Shows *when* each defense wins or loses, not just where it ends up: the
//! undefended run under GD collapses within a few rounds and never
//! recovers, while AsyncFilter's trajectory tracks the benign one.
//!
//! ```text
//! cargo run --release --example convergence_trace
//! ```

use asyncfilter::analysis::report::sparkline;
use asyncfilter::prelude::*;

fn trace(label: &str, result: &RunResult) {
    let accs: Vec<f64> = result.accuracy_history.iter().map(|&(_, a)| a).collect();
    println!(
        "{:<24} {}  final {:>5.1}%  (reached 80% at round {})",
        label,
        sparkline(&accs),
        result.final_accuracy * 100.0,
        result
            .rounds_to_reach(0.8)
            .map(|r| r.to_string())
            .unwrap_or_else(|| "—".into()),
    );
}

fn main() {
    let mut config = SimConfig::paper_default(DatasetProfile::FashionMnist);
    config.num_clients = 50;
    config.num_malicious = 10;
    config.aggregation_bound = 20;
    config.rounds = 40;
    config.eval_every = 2; // dense checkpoints for a readable sparkline
    config.test_samples = 1_000;

    println!("== convergence under the GD attack (FashionMNIST profile) ==\n");
    let benign = Simulation::new(config.clone()).run(Box::new(PassthroughFilter), AttackKind::None);
    trace("benign / FedBuff", &benign);
    let attacked = Simulation::new(config.clone()).run(Box::new(PassthroughFilter), AttackKind::Gd);
    trace("GD / FedBuff", &attacked);
    let detector =
        Simulation::new(config.clone()).run(Box::new(FlDetector::default()), AttackKind::Gd);
    trace("GD / FLDetector", &detector);
    let defended =
        Simulation::new(config.clone()).run(Box::new(AsyncFilter::default()), AttackKind::Gd);
    trace("GD / AsyncFilter", &defended);

    // Per-round filtering trace for the defended run: how much was cut.
    let rejected: Vec<f64> = defended
        .round_reports
        .iter()
        .map(|r| r.rejected as f64)
        .collect();
    println!(
        "\nAsyncFilter rejections per round: {}  (total {} of {} filtered updates)",
        sparkline(&rejected),
        defended.detection.true_positives + defended.detection.false_positives,
        defended.detection.total(),
    );
}
