//! Quickstart: defend an asynchronous federated run against a poisoning
//! attack.
//!
//! Runs the same small federation three times — undefended and benign,
//! undefended under the GD (gradient-deviation) attack, and defended by
//! AsyncFilter under the same attack — and prints the accuracy story.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use asyncfilter::prelude::*;

fn main() {
    // 40 clients, 8 of them controlled by the attacker; the server
    // aggregates whenever 16 reports are buffered and tolerates staleness
    // up to 10 rounds.
    let mut config = SimConfig::paper_default(DatasetProfile::Mnist);
    config.num_clients = 40;
    config.num_malicious = 8;
    config.aggregation_bound = 16;
    config.staleness_limit = 10;
    config.rounds = 30;

    println!("== AsyncFilter quickstart ==");
    println!(
        "{} clients ({} malicious), aggregation bound {}, staleness limit {}\n",
        config.num_clients, config.num_malicious, config.aggregation_bound, config.staleness_limit
    );

    // 1. No attack, no defense: the baseline ceiling.
    let benign = Simulation::new(config.clone()).run(Box::new(PassthroughFilter), AttackKind::None);
    println!(
        "benign, FedBuff          : {:.1}% accuracy",
        benign.final_accuracy * 100.0
    );

    // 2. GD attack, no defense: malicious clients reverse their updates.
    let attacked = Simulation::new(config.clone()).run(Box::new(PassthroughFilter), AttackKind::Gd);
    println!(
        "GD attack, FedBuff       : {:.1}% accuracy",
        attacked.final_accuracy * 100.0
    );

    // 3. GD attack, AsyncFilter: staleness-aware statistical filtering.
    let defended = Simulation::new(config).run(Box::new(AsyncFilter::default()), AttackKind::Gd);
    println!(
        "GD attack, AsyncFilter   : {:.1}% accuracy",
        defended.final_accuracy * 100.0
    );
    println!(
        "\ndetection: precision {:.2}, recall {:.2} over {} filtered updates",
        defended.detection.precision(),
        defended.detection.recall(),
        defended.detection.total()
    );
    println!(
        "mean staleness of buffered updates: {:.2} rounds",
        defended.mean_staleness()
    );
}
