//! PLATO-style thread-per-client execution.
//!
//! The paper's testbed runs every client on its own thread; this example
//! drives the crate's threaded runtime — genuinely concurrent clients,
//! std mpsc channels, a locked FedBuff server — with AsyncFilter installed,
//! and contrasts it with the deterministic discrete-event engine on the
//! same configuration.
//!
//! ```text
//! cargo run --release --example threaded_demo
//! ```

use asyncfilter::prelude::*;

fn main() {
    let mut config = SimConfig::paper_default(DatasetProfile::Mnist);
    config.num_clients = 24;
    config.num_malicious = 5;
    config.aggregation_bound = 10;
    config.rounds = 15;
    config.test_samples = 1_000;

    println!("== threaded (PLATO-emulation) runtime vs deterministic DES ==\n");

    let threaded = run_threaded(
        config.clone(),
        Box::new(AsyncFilter::default()),
        AttackKind::Gd,
    );
    println!(
        "threaded : {:.1}% accuracy, {} rounds, {} updates received, wall {:.2}s",
        threaded.final_accuracy * 100.0,
        threaded.rounds_completed,
        threaded.updates_received,
        threaded.sim_time
    );

    let des = Simulation::new(config).run(Box::new(AsyncFilter::default()), AttackKind::Gd);
    println!(
        "DES      : {:.1}% accuracy, {} rounds, {} updates received, virtual time {:.2}",
        des.final_accuracy * 100.0,
        des.rounds_completed,
        des.updates_received,
        des.sim_time
    );

    println!(
        "\nBoth engines drive the identical UpdateFilter plug-in; the DES run is \
         bit-reproducible for a fixed seed, the threaded run depends on the OS \
         scheduler (like PLATO's live mode)."
    );
    println!(
        "threaded staleness histogram: {:?}",
        threaded.staleness_histogram
    );
}
