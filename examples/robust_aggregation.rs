//! Classic Byzantine-robust rules vs a detection filter.
//!
//! The paper surveys Krum, Median, Trimmed-Mean, Bucketing and NNM (§2.3)
//! as the synchronous state of the art. This example runs them *in the
//! asynchronous setting* against the GD attack and compares them with
//! AsyncFilter + plain mean — showing both that robust rules help, and that
//! they are complementary to filtering (AsyncFilter composes with any of
//! them, per the paper's "plug and play alongside secure aggregation").
//!
//! ```text
//! cargo run --release --example robust_aggregation
//! ```

use asyncfilter::core::aggregation::{
    Aggregator, KrumAggregator, MeanAggregator, MedianAggregator, TrimmedMeanAggregator,
};
use asyncfilter::core::preagg::{BucketingAggregator, NnmAggregator};
use asyncfilter::prelude::*;
use asyncfilter::sim::runner::build_attack;

fn main() {
    let mut config = SimConfig::paper_default(DatasetProfile::FashionMnist);
    config.num_clients = 50;
    config.num_malicious = 10;
    config.aggregation_bound = 20;
    config.rounds = 30;
    config.test_samples = 1_000;

    println!("== robust aggregation under the GD attack (async setting) ==\n");
    println!("{:<34} {:>10}", "configuration", "accuracy");

    type Setup = (
        &'static str,
        fn() -> (Box<dyn UpdateFilter>, Box<dyn Aggregator>),
    );
    let setups: [Setup; 7] = [
        ("FedBuff (mean, no filter)", || {
            (Box::new(PassthroughFilter), Box::new(MeanAggregator::new()))
        }),
        ("median, no filter", || {
            (Box::new(PassthroughFilter), Box::new(MedianAggregator))
        }),
        ("trimmed-mean(0.25), no filter", || {
            (
                Box::new(PassthroughFilter),
                Box::new(TrimmedMeanAggregator::new(0.25)),
            )
        }),
        ("multi-krum(f=10,k=8), no filter", || {
            (
                Box::new(PassthroughFilter),
                Box::new(KrumAggregator::multi(10, 8)),
            )
        }),
        ("bucketing(3)+median, no filter", || {
            (
                Box::new(PassthroughFilter),
                Box::new(BucketingAggregator::new(3, Box::new(MedianAggregator), 1)),
            )
        }),
        ("nnm(5)+mean, no filter", || {
            (
                Box::new(PassthroughFilter),
                Box::new(NnmAggregator::new(5, Box::new(MeanAggregator::new()))),
            )
        }),
        ("AsyncFilter + mean", || {
            (
                Box::new(AsyncFilter::default()),
                Box::new(MeanAggregator::new()),
            )
        }),
    ];

    for (label, build) in setups {
        let (filter, aggregator) = build();
        let attack = build_attack(AttackKind::Gd, config.num_clients, config.num_malicious);
        let mut sim = Simulation::new(config.clone());
        let result = sim.run_with(filter, attack, aggregator);
        println!("{:<34} {:>9.1}%", label, result.final_accuracy * 100.0);
    }

    // The composition the paper advertises: detection *and* a robust rule.
    let attack = build_attack(AttackKind::Gd, config.num_clients, config.num_malicious);
    let mut sim = Simulation::new(config.clone());
    let result = sim.run_with(
        Box::new(AsyncFilter::default()),
        attack,
        Box::new(TrimmedMeanAggregator::new(0.1)),
    );
    println!(
        "{:<34} {:>9.1}%",
        "AsyncFilter + trimmed-mean(0.1)",
        result.final_accuracy * 100.0
    );
}
