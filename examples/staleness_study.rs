//! Staleness limits and stragglers: a miniature of the paper's Fig. 6.
//!
//! Sweeps the server's staleness limit and the Zipf latency exponent,
//! showing how stale updates slow convergence and how AsyncFilter holds its
//! accuracy across the sweep.
//!
//! ```text
//! cargo run --release --example staleness_study
//! ```

use asyncfilter::prelude::*;

fn main() {
    let mut base = SimConfig::paper_default(DatasetProfile::FashionMnist);
    base.num_clients = 40;
    base.num_malicious = 8;
    base.aggregation_bound = 16;
    base.rounds = 25;
    base.test_samples = 1_000;

    println!("== staleness-limit sweep under the GD attack (mini Fig. 6) ==\n");
    println!(
        "{:>6} {:>12} {:>12} {:>16} {:>12}",
        "limit", "FedBuff", "AsyncFilter", "mean staleness", "discarded"
    );
    for limit in [2u64, 5, 10, 20] {
        let mut config = base.clone();
        config.staleness_limit = limit;
        let fb = Simulation::new(config.clone()).run(Box::new(PassthroughFilter), AttackKind::Gd);
        let af = Simulation::new(config).run(Box::new(AsyncFilter::default()), AttackKind::Gd);
        println!(
            "{:>6} {:>11.1}% {:>11.1}% {:>16.2} {:>12}",
            limit,
            fb.final_accuracy * 100.0,
            af.final_accuracy * 100.0,
            af.mean_staleness(),
            af.updates_discarded_stale
        );
    }

    println!("\n== Zipf latency exponent (system heterogeneity, Table 10's knob) ==\n");
    println!("{:>6} {:>12} {:>16}", "s", "AsyncFilter", "mean staleness");
    for s in [1.2, 1.8, 2.5] {
        let mut config = base.clone();
        config.zipf_s = s;
        let af = Simulation::new(config).run(Box::new(AsyncFilter::default()), AttackKind::Gd);
        println!(
            "{:>6} {:>11.1}% {:>16.2}",
            s,
            af.final_accuracy * 100.0,
            af.mean_staleness()
        );
    }
    println!(
        "\nHigher Zipf exponents concentrate clients on the fast latency level, \
         so staleness shrinks and accuracy rises — the paper's Table 10 regime."
    );
}
