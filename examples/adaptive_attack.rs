//! Adaptive attackers vs AsyncFilter: probing the defense's limits.
//!
//! The paper's defense goal (§3.2) includes "adaptive strategies". This
//! example pits AsyncFilter against the extension attacks — IPM and an
//! adaptive attacker that knows AsyncFilter's distance rule and budgets its
//! deviation to hide inside the benign spread — and reports both accuracy
//! and detection quality.
//!
//! The punchline matches the paper's own framing (§4.3): an attacker subtle
//! enough to evade a statistical filter is also too subtle to do much
//! damage — "if a subtle attacker makes only minimal modifications … this
//! is not regarded as a successful attack".
//!
//! ```text
//! cargo run --release --example adaptive_attack
//! ```

use asyncfilter::attacks::AdaptiveStealthAttack;
use asyncfilter::core::aggregation::MeanAggregator;
use asyncfilter::prelude::*;

fn main() {
    let mut config = SimConfig::paper_default(DatasetProfile::FashionMnist);
    config.num_clients = 50;
    config.num_malicious = 10;
    config.aggregation_bound = 20;
    config.rounds = 30;
    config.test_samples = 1_000;

    let benign = Simulation::new(config.clone()).run(Box::new(PassthroughFilter), AttackKind::None);
    println!("== adaptive attacks vs AsyncFilter ==\n");
    println!("benign ceiling: {:.1}%\n", benign.final_accuracy * 100.0);
    println!(
        "{:<26} {:>10} {:>12} {:>10} {:>8}",
        "attack", "FedBuff", "AsyncFilter", "recall", "fpr"
    );

    for attack in [AttackKind::Gd, AttackKind::Ipm, AttackKind::Adaptive] {
        let undefended = Simulation::new(config.clone()).run(Box::new(PassthroughFilter), attack);
        let defended =
            Simulation::new(config.clone()).run(Box::new(AsyncFilter::default()), attack);
        println!(
            "{:<26} {:>9.1}% {:>11.1}% {:>10.2} {:>8.2}",
            attack.label(),
            undefended.final_accuracy * 100.0,
            defended.final_accuracy * 100.0,
            defended.detection.recall(),
            defended.detection.false_positive_rate(),
        );
    }

    // Sweep the adaptive attacker's stealth budget: potency vs evasion.
    println!("\nstealth budget sweep (adaptive attacker, AsyncFilter defending):");
    println!("{:>8} {:>12} {:>10}", "budget", "accuracy", "recall");
    for stealth in [0.5, 1.0, 2.0, 4.0] {
        let mut sim = Simulation::new(config.clone());
        let result = sim.run_with(
            Box::new(AsyncFilter::default()),
            Box::new(AdaptiveStealthAttack::new(stealth)),
            Box::new(MeanAggregator::new()),
        );
        println!(
            "{:>8.1} {:>11.1}% {:>10.2}",
            stealth,
            result.final_accuracy * 100.0,
            result.detection.recall()
        );
    }
    println!(
        "\nSmall budgets evade detection but barely dent accuracy; large budgets \
         bite but light up the filter — the trade-off AsyncFilter forces."
    );
}
