//! Plug-and-play: write your own server-side defense.
//!
//! The paper stresses that AsyncFilter "can be seamlessly integrated into
//! all asynchronous federated learning systems as a pluggable component".
//! This example shows the other direction of that interface: implementing a
//! *custom* defense (a simple norm-clipping filter) against the same
//! [`UpdateFilter`] trait and comparing it with AsyncFilter under attack.
//!
//! ```text
//! cargo run --release --example custom_defense
//! ```

use asyncfilter::prelude::*;

/// A naive defense: reject any update whose delta norm exceeds `factor`
/// times the running median of observed delta norms.
///
/// Good against crude large-norm attacks (GD), helpless against anything
/// that stays inside the benign norm range (LIE, Min-Max, Min-Sum) — which
/// is exactly why AsyncFilter's staleness-aware scoring exists.
struct NormClipFilter {
    factor: f64,
    observed_norms: Vec<f64>,
}

impl NormClipFilter {
    fn new(factor: f64) -> Self {
        Self {
            factor,
            observed_norms: Vec::new(),
        }
    }

    fn median_norm(&self) -> Option<f64> {
        if self.observed_norms.is_empty() {
            return None;
        }
        let mut sorted = self.observed_norms.clone();
        sorted.sort_by(f64::total_cmp);
        Some(sorted[sorted.len() / 2])
    }
}

impl UpdateFilter for NormClipFilter {
    fn name(&self) -> &str {
        "NormClip"
    }

    fn filter(&mut self, updates: Vec<ClientUpdate>, _ctx: &FilterContext<'_>) -> FilterOutcome {
        let threshold = self.median_norm().map(|m| m * self.factor);
        let mut outcome = FilterOutcome::default();
        for u in updates {
            let norm = u.delta.norm();
            let keep = u.params.is_finite() && threshold.is_none_or(|t| norm <= t);
            self.observed_norms.push(norm);
            if self.observed_norms.len() > 4096 {
                self.observed_norms.remove(0);
            }
            if keep {
                outcome.accepted.push(u);
            } else {
                outcome.rejected.push(u);
            }
        }
        outcome
    }
}

fn main() {
    let mut config = SimConfig::paper_default(DatasetProfile::FashionMnist);
    config.num_clients = 40;
    config.num_malicious = 8;
    config.aggregation_bound = 16;
    config.rounds = 30;

    println!("== custom defense vs AsyncFilter ==\n");
    println!("{:<14} {:>10} {:>10}", "defense", "GD", "LIE");
    type FilterFactory = fn() -> Box<dyn UpdateFilter>;
    let defenses: [(&str, FilterFactory); 3] = [
        ("FedBuff", || Box::new(PassthroughFilter)),
        ("NormClip", || Box::new(NormClipFilter::new(3.0))),
        ("AsyncFilter", || Box::new(AsyncFilter::default())),
    ];
    for (label, build) in defenses {
        let gd = Simulation::new(config.clone()).run(build(), AttackKind::Gd);
        let lie = Simulation::new(config.clone()).run(build(), AttackKind::Lie);
        println!(
            "{:<14} {:>9.1}% {:>9.1}%",
            label,
            gd.final_accuracy * 100.0,
            lie.final_accuracy * 100.0
        );
    }
    println!(
        "\nA simple norm rule already stops the crude large-norm attack; \
         AsyncFilter's value is that it needs no norm assumption and keeps \
         working when attackers match benign magnitudes (see the Min-Max/\
         Min-Sum constructions in asyncfl-attacks)."
    );
}
