//! Why staleness grouping works: the update-geometry observation behind
//! the paper's Figs. 3–4.
//!
//! Records one aggregation's worth of local updates from a benign run,
//! embeds them with PCA + t-SNE, and prints the per-staleness-group
//! structure: same-staleness updates cluster around a common center, and
//! non-IID data widens each cluster without destroying the grouping.
//!
//! ```text
//! cargo run --release --example update_geometry
//! ```

use asyncfilter::analysis::experiment::RecordingFilter;
use asyncfilter::analysis::{pca, tsne};
use asyncfilter::prelude::*;
use asyncfilter::tensor::kernels::sum_seq;

fn structure(partitioner: Partitioner, label: &str) {
    let mut config = SimConfig::paper_default(DatasetProfile::Mnist);
    config.num_clients = 60;
    config.num_malicious = 0;
    config.aggregation_bound = 24;
    config.rounds = 8;
    config.test_samples = 500;
    config.partitioner = partitioner;

    let recorder = RecordingFilter::new();
    let log = recorder.log_handle();
    Simulation::new(config).run(Box::new(recorder), AttackKind::None);

    let records = log.lock().unwrap().clone();
    let last = records.iter().map(|r| r.round).max().unwrap_or(0);
    let snapshot: Vec<_> = records.into_iter().filter(|r| r.round == last).collect();
    let points: Vec<Vector> = snapshot.iter().map(|r| r.params.clone()).collect();

    let comps = 10.min(points.len().saturating_sub(1)).max(1);
    let reduced = pca::project(&points, comps, 1);
    let reduced: Vec<Vector> = (0..reduced.rows())
        .map(|r| Vector::from(reduced.row(r)))
        .collect();
    let emb = tsne::embed(
        &reduced,
        &tsne::TsneConfig {
            perplexity: 8.0,
            iterations: 250,
            ..Default::default()
        },
    );

    println!("-- {label}: {} updates at round {last} --", emb.len());
    let mut taus: Vec<u64> = snapshot.iter().map(|r| r.staleness).collect();
    taus.sort_unstable();
    taus.dedup();
    for tau in taus {
        let members: Vec<usize> = snapshot
            .iter()
            .enumerate()
            .filter(|(_, r)| r.staleness == tau)
            .map(|(i, _)| i)
            .collect();
        let n = members.len() as f64;
        let cx = sum_seq(members.iter().map(|&i| emb[i].0)) / n;
        let cy = sum_seq(members.iter().map(|&i| emb[i].1)) / n;
        let spread = sum_seq(
            members
                .iter()
                .map(|&i| ((emb[i].0 - cx).powi(2) + (emb[i].1 - cy).powi(2)).sqrt()),
        ) / n;
        println!(
            "  τ = {tau}: {:>3} updates, embedding centroid ({cx:7.2}, {cy:7.2}), spread {spread:6.2}",
            members.len()
        );
    }
    println!();
}

fn main() {
    println!("== update geometry: staleness clusters (mini Figs. 3-4) ==\n");
    structure(Partitioner::iid(), "IID (Fig. 3 analogue)");
    structure(
        Partitioner::dirichlet(0.01),
        "non-IID Dirichlet(0.01) (Fig. 4 analogue)",
    );
    println!(
        "Same-staleness updates share a centroid; non-IID data widens each \
         cluster — exactly the structure AsyncFilter's staleness grouping \
         (eq. 4) exploits."
    );
}
